//! Transformer model configurations and presets.
//!
//! The traffic volumes of Table 2 and the execution DAG of Fig. 2 are functions of the
//! model's shape: parameter counts per layer, activation sizes per token, and the
//! number of layers assigned to each pipeline stage. [`ModelConfig`] captures the
//! shapes; presets are provided for the models the paper references (Llama 3 8B for the
//! §3.1 trace study, Llama 3.1 405B for the Eq. 1 window-count estimate) plus a few
//! other commonly used configurations.

use serde::{Deserialize, Serialize};

/// Numeric precision of parameters / gradients on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 16-bit brain floating point.
    Bf16,
    /// 16-bit IEEE floating point.
    Fp16,
    /// 32-bit IEEE floating point.
    Fp32,
    /// 8-bit floating point (FP8 training).
    Fp8,
}

impl DType {
    /// Size of one element in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            DType::Fp8 => 1,
            DType::Bf16 | DType::Fp16 => 2,
            DType::Fp32 => 4,
        }
    }
}

/// A decoder-only transformer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of transformer layers.
    pub num_layers: u32,
    /// Hidden (model) dimension.
    pub hidden_size: u64,
    /// Feed-forward intermediate dimension.
    pub ffn_hidden_size: u64,
    /// Number of attention heads.
    pub num_heads: u64,
    /// Number of key/value heads (grouped-query attention).
    pub num_kv_heads: u64,
    /// Vocabulary size.
    pub vocab_size: u64,
    /// Parameter / activation precision on the wire.
    pub dtype: DType,
    /// Gradient precision used for reduction (often fp32 for numerical robustness).
    pub grad_dtype: DType,
    /// Number of experts for mixture-of-experts models (1 = dense).
    pub num_experts: u32,
    /// Number of experts routed per token (MoE top-k).
    pub experts_per_token: u32,
    /// True for gated (SwiGLU-style, 3-matrix) MLPs; false for classic 2-matrix MLPs.
    pub gated_mlp: bool,
}

impl ModelConfig {
    /// Llama 3 8B — the workload of the paper's §3.1 Perlmutter study.
    pub fn llama3_8b() -> Self {
        ModelConfig {
            name: "Llama3-8B".into(),
            num_layers: 32,
            hidden_size: 4096,
            ffn_hidden_size: 14336,
            num_heads: 32,
            num_kv_heads: 8,
            vocab_size: 128_256,
            dtype: DType::Bf16,
            grad_dtype: DType::Fp32,
            num_experts: 1,
            experts_per_token: 1,
            gated_mlp: true,
        }
    }

    /// Llama 3 70B.
    pub fn llama3_70b() -> Self {
        ModelConfig {
            name: "Llama3-70B".into(),
            num_layers: 80,
            hidden_size: 8192,
            ffn_hidden_size: 28672,
            num_heads: 64,
            num_kv_heads: 8,
            vocab_size: 128_256,
            dtype: DType::Bf16,
            grad_dtype: DType::Fp32,
            num_experts: 1,
            experts_per_token: 1,
            gated_mlp: true,
        }
    }

    /// Llama 3.1 405B — used for the paper's Eq. 1 window-count estimate (127 windows
    /// per iteration at the configuration reported in [10]/[41]).
    pub fn llama31_405b() -> Self {
        ModelConfig {
            name: "Llama3.1-405B".into(),
            num_layers: 126,
            hidden_size: 16384,
            ffn_hidden_size: 53248,
            num_heads: 128,
            num_kv_heads: 8,
            vocab_size: 128_256,
            dtype: DType::Bf16,
            grad_dtype: DType::Fp32,
            num_experts: 1,
            experts_per_token: 1,
            gated_mlp: true,
        }
    }

    /// GPT-3 175B.
    pub fn gpt3_175b() -> Self {
        ModelConfig {
            name: "GPT-3 175B".into(),
            num_layers: 96,
            hidden_size: 12288,
            ffn_hidden_size: 49152,
            num_heads: 96,
            num_kv_heads: 96,
            vocab_size: 50_257,
            dtype: DType::Bf16,
            grad_dtype: DType::Fp32,
            num_experts: 1,
            experts_per_token: 1,
            gated_mlp: false,
        }
    }

    /// Mixtral-8x7B-style mixture-of-experts model (for expert-parallel scenarios).
    pub fn mixtral_8x7b() -> Self {
        ModelConfig {
            name: "Mixtral-8x7B".into(),
            num_layers: 32,
            hidden_size: 4096,
            ffn_hidden_size: 14336,
            num_heads: 32,
            num_kv_heads: 8,
            vocab_size: 32_000,
            dtype: DType::Bf16,
            grad_dtype: DType::Fp32,
            num_experts: 8,
            experts_per_token: 2,
            gated_mlp: true,
        }
    }

    /// A tiny model for fast tests: 4 layers, hidden 512.
    pub fn tiny_test() -> Self {
        ModelConfig {
            name: "tiny-test".into(),
            num_layers: 4,
            hidden_size: 512,
            ffn_hidden_size: 2048,
            num_heads: 8,
            num_kv_heads: 8,
            vocab_size: 32_000,
            dtype: DType::Bf16,
            grad_dtype: DType::Fp32,
            num_experts: 1,
            experts_per_token: 1,
            gated_mlp: true,
        }
    }

    /// True for mixture-of-experts models.
    pub fn is_moe(&self) -> bool {
        self.num_experts > 1
    }

    /// Head dimension.
    pub fn head_dim(&self) -> u64 {
        self.hidden_size / self.num_heads
    }

    /// Key/value projection width (grouped-query attention).
    pub fn kv_dim(&self) -> u64 {
        self.head_dim() * self.num_kv_heads
    }

    /// Parameter count of the attention block of one layer (Q, K, V, O projections).
    pub fn attention_params_per_layer(&self) -> u64 {
        let h = self.hidden_size;
        let kv = self.kv_dim();
        // Q and O: h*h each; K and V: h*kv each.
        2 * h * h + 2 * h * kv
    }

    /// Parameter count of the MLP block of one layer: gate/up/down projections for
    /// gated (SwiGLU-style) MLPs, up/down for classic MLPs. For MoE models this is the
    /// size of a single expert.
    pub fn mlp_params_per_expert(&self) -> u64 {
        let matrices = if self.gated_mlp { 3 } else { 2 };
        matrices * self.hidden_size * self.ffn_hidden_size
    }

    /// Parameter count of one transformer layer (all experts included).
    pub fn params_per_layer(&self) -> u64 {
        let mlp = self.mlp_params_per_expert() * self.num_experts as u64;
        // Two RMSNorm weight vectors per layer.
        let norms = 2 * self.hidden_size;
        self.attention_params_per_layer() + mlp + norms
    }

    /// Parameter count of the embedding (and tied output projection counted once).
    pub fn embedding_params(&self) -> u64 {
        self.vocab_size * self.hidden_size
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.params_per_layer() * self.num_layers as u64 + 2 * self.embedding_params()
    }

    /// Forward FLOPs per token for one layer (dense approximation `2 * params`, with
    /// only the routed experts active for MoE models).
    pub fn fwd_flops_per_token_per_layer(&self, seq_len: u64) -> u64 {
        let active_mlp = self.mlp_params_per_expert() * self.experts_per_token.max(1) as u64;
        let dense = self.attention_params_per_layer() + active_mlp;
        // Attention score computation: 2 * seq * head_dim per head per token ~ 2*seq*h.
        let attn_scores = 2 * seq_len * self.hidden_size;
        2 * dense + attn_scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::Bf16.bytes(), 2);
        assert_eq!(DType::Fp32.bytes(), 4);
        assert_eq!(DType::Fp8.bytes(), 1);
    }

    #[test]
    fn llama3_8b_param_count_is_about_8b() {
        let m = ModelConfig::llama3_8b();
        let total = m.total_params();
        assert!(
            (7.5e9..9.0e9).contains(&(total as f64)),
            "Llama3-8B should have ~8B params, got {total}"
        );
    }

    #[test]
    fn llama3_70b_param_count_is_about_70b() {
        let m = ModelConfig::llama3_70b();
        let total = m.total_params() as f64;
        assert!((65e9..75e9).contains(&total), "got {total}");
    }

    #[test]
    fn llama31_405b_param_count_is_about_405b() {
        let m = ModelConfig::llama31_405b();
        let total = m.total_params() as f64;
        assert!((380e9..430e9).contains(&total), "got {total}");
    }

    #[test]
    fn gpt3_param_count_is_about_175b() {
        let m = ModelConfig::gpt3_175b();
        let total = m.total_params() as f64;
        assert!((165e9..185e9).contains(&total), "got {total}");
    }

    #[test]
    fn moe_detection_and_active_params() {
        let moe = ModelConfig::mixtral_8x7b();
        assert!(moe.is_moe());
        assert!(!ModelConfig::llama3_8b().is_moe());
        // Active FLOPs use only routed experts, so a top-2-of-8 MoE is cheaper per
        // token than a dense model with all 8 experts' parameters.
        let dense_equivalent = 2 * moe.params_per_layer();
        assert!(moe.fwd_flops_per_token_per_layer(1) < dense_equivalent);
    }

    #[test]
    fn gqa_kv_dim() {
        let m = ModelConfig::llama3_8b();
        assert_eq!(m.head_dim(), 128);
        assert_eq!(m.kv_dim(), 1024);
    }
}
