//! A small-vector dependency list: the edge storage of [`crate::dag::Task`].
//!
//! At datacenter scale the DAG holds tens of millions of tasks, and with
//! `deps: Vec<TaskId>` every one of them owned a separate heap allocation — at
//! 1M GPUs (~89M tasks) those small Vecs alone added gigabytes to the build
//! peak *and* left the allocator's small-chunk free lists resident after the
//! builder's arena was condensed away. The measured dependency histogram is
//! sharply bimodal: ~91 % of tasks have ≤ 4 dependencies (compute chains,
//! point-to-point transfers), ~9 % have exactly the TP degree (collective join
//! points), and a thin tail (FSDP chain collectives) goes wide. `DepList`
//! stores up to [`DEPS_INLINE`] ids inline — 32 bytes total, one word over a
//! `Vec` header, but the common case costs **zero** heap — and spills the
//! tail to a `Vec`.
//!
//! The API mirrors the slice of `TaskId`s it replaces (`Deref`, iteration,
//! `contains`, `push`, `retain`), and it serializes exactly like
//! `Vec<TaskId>`, so serialized DAGs are byte-identical.

use crate::dag::TaskId;
use serde::{Deserialize, Serialize, Value};

/// Dependency count stored without a heap allocation.
pub const DEPS_INLINE: usize = 5;

/// A task's dependency list: inline up to [`DEPS_INLINE`] ids, spilled beyond.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepList {
    /// The common case: the ids live in the struct itself.
    Inline {
        /// Number of valid entries in `ids`.
        len: u8,
        /// The dependency ids (`ids[..len as usize]` are valid).
        ids: [TaskId; DEPS_INLINE],
    },
    /// The wide tail (collective join points, FSDP chains).
    Spilled(Vec<TaskId>),
}

impl DepList {
    /// An empty list (no allocation).
    pub const fn new() -> Self {
        DepList::Inline {
            len: 0,
            ids: [TaskId(0); DEPS_INLINE],
        }
    }

    /// The dependencies as a slice.
    pub fn as_slice(&self) -> &[TaskId] {
        match self {
            DepList::Inline { len, ids } => &ids[..*len as usize],
            DepList::Spilled(v) => v,
        }
    }

    /// Appends a dependency, spilling to the heap past the inline capacity.
    pub fn push(&mut self, id: TaskId) {
        match self {
            DepList::Inline { len, ids } => {
                if (*len as usize) < DEPS_INLINE {
                    ids[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(DEPS_INLINE * 2);
                    v.extend_from_slice(&ids[..]);
                    v.push(id);
                    *self = DepList::Spilled(v);
                }
            }
            DepList::Spilled(v) => v.push(id),
        }
    }

    /// Keeps only the ids for which `keep` returns true, preserving order.
    pub fn retain(&mut self, mut keep: impl FnMut(&TaskId) -> bool) {
        match self {
            DepList::Inline { len, ids } => {
                let mut kept = 0usize;
                for i in 0..*len as usize {
                    if keep(&ids[i]) {
                        ids[kept] = ids[i];
                        kept += 1;
                    }
                }
                *len = kept as u8;
            }
            // A spilled list never un-spills: dedup runs once at task creation and
            // the list is read-only afterwards, so shrinking back would only churn.
            DepList::Spilled(v) => v.retain(keep),
        }
    }
}

impl Default for DepList {
    fn default() -> Self {
        DepList::new()
    }
}

impl std::ops::Deref for DepList {
    type Target = [TaskId];
    fn deref(&self) -> &[TaskId] {
        self.as_slice()
    }
}

impl From<Vec<TaskId>> for DepList {
    fn from(v: Vec<TaskId>) -> Self {
        if v.len() <= DEPS_INLINE {
            let mut ids = [TaskId(0); DEPS_INLINE];
            ids[..v.len()].copy_from_slice(&v);
            DepList::Inline {
                len: v.len() as u8,
                ids,
            }
        } else {
            DepList::Spilled(v)
        }
    }
}

impl<'a> IntoIterator for &'a DepList {
    type Item = &'a TaskId;
    type IntoIter = std::slice::Iter<'a, TaskId>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl Serialize for DepList {
    fn to_value(&self) -> Value {
        // Exactly `Vec<TaskId>`'s shape, so serialized DAGs are unchanged.
        Value::Seq(self.as_slice().iter().map(Serialize::to_value).collect())
    }
}

impl<'de> Deserialize<'de> for DepList {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_variant_adds_at_most_one_word_over_a_vec_header() {
        assert!(
            std::mem::size_of::<DepList>() <= std::mem::size_of::<Vec<TaskId>>() + 8,
            "DepList is {} bytes",
            std::mem::size_of::<DepList>()
        );
    }

    #[test]
    fn push_spills_past_the_inline_capacity() {
        let mut list = DepList::new();
        for i in 0..DEPS_INLINE as u32 {
            list.push(TaskId(i));
        }
        assert!(matches!(list, DepList::Inline { .. }));
        list.push(TaskId(99));
        assert!(matches!(list, DepList::Spilled(_)));
        let expected: Vec<TaskId> = (0..DEPS_INLINE as u32)
            .map(TaskId)
            .chain([TaskId(99)])
            .collect();
        assert_eq!(&*list, expected.as_slice());
    }

    #[test]
    fn retain_preserves_order_in_both_variants() {
        let mut inline: DepList = vec![TaskId(1), TaskId(2), TaskId(3)].into();
        inline.retain(|d| d.0 != 2);
        assert_eq!(&*inline, &[TaskId(1), TaskId(3)]);

        let mut spilled: DepList = (0..10).map(TaskId).collect::<Vec<_>>().into();
        spilled.retain(|d| d.0 % 2 == 0);
        assert_eq!(
            &*spilled,
            &[TaskId(0), TaskId(2), TaskId(4), TaskId(6), TaskId(8)]
        );
    }

    #[test]
    fn serializes_exactly_like_a_vec() {
        let list: DepList = vec![TaskId(7), TaskId(8)].into();
        let vec = vec![TaskId(7), TaskId(8)];
        assert_eq!(
            serde_json::to_string(&list).unwrap(),
            serde_json::to_string(&vec).unwrap()
        );
    }
}
