//! Pipeline-parallel schedules.
//!
//! The paper's trace study (§3.1) uses the 1-forward-1-backward (1F1B) schedule: each
//! stage performs a number of warm-up forward passes, then alternates one forward with
//! one backward (the *steady* phase), and finally drains the remaining backwards
//! (*cool-down*). Fig. 3 splits the per-rail communication pattern along exactly these
//! phases, so the schedule and its phase classification are first-class citizens here.

use serde::{Deserialize, Serialize};

/// One compute step of a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineOp {
    /// Forward pass of one micro-batch.
    Forward {
        /// Micro-batch index.
        microbatch: u32,
    },
    /// Backward pass of one micro-batch.
    Backward {
        /// Micro-batch index.
        microbatch: u32,
    },
}

impl PipelineOp {
    /// The micro-batch this op processes.
    pub fn microbatch(self) -> u32 {
        match self {
            PipelineOp::Forward { microbatch } | PipelineOp::Backward { microbatch } => microbatch,
        }
    }

    /// True for forward ops.
    pub fn is_forward(self) -> bool {
        matches!(self, PipelineOp::Forward { .. })
    }
}

/// The pipeline phase an op belongs to (the x-axis segmentation of Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelinePhase {
    /// Initial forwards before the first backward.
    WarmUp,
    /// Alternating 1F1B region.
    Steady,
    /// Trailing backwards after the last forward.
    CoolDown,
    /// The optimizer/synchronization epilogue after all micro-batches complete.
    Sync,
}

/// The supported pipeline schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineSchedule {
    /// 1-forward-1-backward (Megatron/TorchTitan default, used by the paper).
    OneFOneB,
    /// GPipe: all forwards, then all backwards.
    GPipe,
}

impl PipelineSchedule {
    /// The op sequence executed by `stage` (0-based) of a pipeline with `num_stages`
    /// stages and `num_microbatches` micro-batches.
    ///
    /// # Panics
    /// Panics if `stage >= num_stages`, or either count is zero.
    pub fn ops(self, stage: u32, num_stages: u32, num_microbatches: u32) -> Vec<PipelineOp> {
        assert!(num_stages > 0 && num_microbatches > 0, "empty pipeline");
        assert!(stage < num_stages, "stage {stage} out of range");
        match self {
            PipelineSchedule::GPipe => {
                let mut ops: Vec<PipelineOp> = (0..num_microbatches)
                    .map(|m| PipelineOp::Forward { microbatch: m })
                    .collect();
                ops.extend((0..num_microbatches).map(|m| PipelineOp::Backward { microbatch: m }));
                ops
            }
            PipelineSchedule::OneFOneB => {
                let warmup = (num_stages - stage - 1).min(num_microbatches);
                let mut ops = Vec::new();
                for m in 0..warmup {
                    ops.push(PipelineOp::Forward { microbatch: m });
                }
                let steady = num_microbatches - warmup;
                for i in 0..steady {
                    ops.push(PipelineOp::Forward {
                        microbatch: warmup + i,
                    });
                    ops.push(PipelineOp::Backward { microbatch: i });
                }
                for i in 0..warmup {
                    ops.push(PipelineOp::Backward {
                        microbatch: steady + i,
                    });
                }
                ops
            }
        }
    }

    /// Classifies each op of [`PipelineSchedule::ops`] into warm-up / steady / cool-down.
    pub fn phases(
        self,
        stage: u32,
        num_stages: u32,
        num_microbatches: u32,
    ) -> Vec<(PipelineOp, PipelinePhase)> {
        let ops = self.ops(stage, num_stages, num_microbatches);
        // Warm-up depth of this stage: the forwards it runs before its first backward
        // under 1F1B. GPipe is treated the same way for classification purposes.
        let warmup = (num_stages - stage - 1).min(num_microbatches) as usize;
        let n = ops.len();
        ops.iter()
            .enumerate()
            .map(|(i, &op)| {
                let phase = if i < warmup {
                    PipelinePhase::WarmUp
                } else if i >= n - warmup {
                    PipelinePhase::CoolDown
                } else {
                    PipelinePhase::Steady
                };
                (op, phase)
            })
            .collect()
    }

    /// The pipeline-bubble fraction of the schedule: idle compute slots divided by the
    /// total slots, `(S - 1) / (M + S - 1)` for both supported schedules.
    pub fn bubble_fraction(self, num_stages: u32, num_microbatches: u32) -> f64 {
        let s = num_stages as f64;
        let m = num_microbatches as f64;
        (s - 1.0) / (m + s - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_f_one_b_paper_configuration() {
        // PP=2, M=2. Stage 0: F0, F1, B0, B1. Stage 1: F0, B0, F1, B1.
        let s0 = PipelineSchedule::OneFOneB.ops(0, 2, 2);
        let s1 = PipelineSchedule::OneFOneB.ops(1, 2, 2);
        use PipelineOp::*;
        assert_eq!(
            s0,
            vec![
                Forward { microbatch: 0 },
                Forward { microbatch: 1 },
                Backward { microbatch: 0 },
                Backward { microbatch: 1 }
            ]
        );
        assert_eq!(
            s1,
            vec![
                Forward { microbatch: 0 },
                Backward { microbatch: 0 },
                Forward { microbatch: 1 },
                Backward { microbatch: 1 }
            ]
        );
    }

    #[test]
    fn every_microbatch_appears_exactly_once_per_direction() {
        for schedule in [PipelineSchedule::OneFOneB, PipelineSchedule::GPipe] {
            for stages in 1..=4u32 {
                for stage in 0..stages {
                    let m = 6;
                    let ops = schedule.ops(stage, stages, m);
                    assert_eq!(ops.len() as u32, 2 * m);
                    for mb in 0..m {
                        let fwd = ops
                            .iter()
                            .filter(|o| o.is_forward() && o.microbatch() == mb)
                            .count();
                        let bwd = ops
                            .iter()
                            .filter(|o| !o.is_forward() && o.microbatch() == mb)
                            .count();
                        assert_eq!((fwd, bwd), (1, 1));
                    }
                }
            }
        }
    }

    #[test]
    fn backward_never_precedes_its_forward() {
        for stages in 1..=4u32 {
            for stage in 0..stages {
                let ops = PipelineSchedule::OneFOneB.ops(stage, stages, 8);
                for mb in 0..8 {
                    let f = ops
                        .iter()
                        .position(|o| o.is_forward() && o.microbatch() == mb)
                        .unwrap();
                    let b = ops
                        .iter()
                        .position(|o| !o.is_forward() && o.microbatch() == mb)
                        .unwrap();
                    assert!(f < b, "stage {stage}: B{mb} before F{mb}");
                }
            }
        }
    }

    #[test]
    fn last_stage_has_no_warmup() {
        let phases = PipelineSchedule::OneFOneB.phases(3, 4, 8);
        assert!(phases.iter().all(|(_, p)| *p != PipelinePhase::WarmUp));
        assert_eq!(phases[0].1, PipelinePhase::Steady);
    }

    #[test]
    fn first_stage_has_longest_warmup() {
        let phases = PipelineSchedule::OneFOneB.phases(0, 4, 8);
        let warmup = phases
            .iter()
            .filter(|(_, p)| *p == PipelinePhase::WarmUp)
            .count();
        assert_eq!(warmup, 3);
        let cooldown = phases
            .iter()
            .filter(|(_, p)| *p == PipelinePhase::CoolDown)
            .count();
        assert_eq!(cooldown, 3);
    }

    #[test]
    fn gpipe_is_all_forwards_then_all_backwards() {
        let ops = PipelineSchedule::GPipe.ops(1, 2, 3);
        assert!(ops[..3].iter().all(|o| o.is_forward()));
        assert!(ops[3..].iter().all(|o| !o.is_forward()));
    }

    #[test]
    fn bubble_fraction_shrinks_with_more_microbatches() {
        let s = PipelineSchedule::OneFOneB;
        assert!(s.bubble_fraction(4, 4) > s.bubble_fraction(4, 16));
        assert!((s.bubble_fraction(1, 8) - 0.0).abs() < 1e-12);
        assert!((s.bubble_fraction(2, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_stage_panics() {
        PipelineSchedule::OneFOneB.ops(2, 2, 2);
    }
}
