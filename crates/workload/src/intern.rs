//! Interned task labels and pooled rank sets.
//!
//! A 100k-GPU iteration DAG has millions of tasks but only thousands of *distinct*
//! labels ("fwd s3 mb1 L27") and rank sets (one per communication group, plus the
//! per-rank singletons and pipeline pairs). Storing an owned `String` and a cloned
//! `Vec<GpuId>` per task made redundant heap data dominate the DAG footprint and put
//! a `String` clone on the simulator's per-event hot path. This module replaces both
//! with 4-byte handles into process-wide, append-only intern tables:
//!
//! * [`LabelId`] — a symbol-table handle; [`LabelId::intern`] deduplicates, and
//!   [`LabelId::as_str`] resolves to a `&'static str` (interned strings are leaked
//!   once, so resolution never copies and never holds a lock across use).
//! * [`RankSet`] — a pooled `[GpuId]` handle with the same contract; one copy per
//!   distinct participant set instead of one per task.
//!
//! Both tables are global and append-only, guarded by an `RwLock` that is only
//! write-locked when a *new* entry is inserted. Handles are only meaningful within
//! the process that created them (they are never serialized as raw indices —
//! `Serialize` resolves them back to the string / rank sequence, so serialized
//! output is byte-identical to the owned representation it replaced).

use railsim_topology::GpuId;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A handle to an interned label string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(u32);

/// A handle to a pooled, immutable set of participating ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RankSet(u32);

/// One append-only intern table: dedup map plus resolution vector.
struct Table<T: ?Sized + 'static> {
    by_value: HashMap<&'static T, u32>,
    entries: Vec<&'static T>,
}

impl<T: ?Sized + 'static> Table<T> {
    fn new() -> Self {
        Table {
            by_value: HashMap::new(),
            entries: Vec::new(),
        }
    }
}

fn labels() -> &'static RwLock<Table<str>> {
    static LABELS: OnceLock<RwLock<Table<str>>> = OnceLock::new();
    LABELS.get_or_init(|| RwLock::new(Table::new()))
}

fn rank_sets() -> &'static RwLock<Table<[GpuId]>> {
    static RANK_SETS: OnceLock<RwLock<Table<[GpuId]>>> = OnceLock::new();
    RANK_SETS.get_or_init(|| RwLock::new(Table::new()))
}

impl LabelId {
    /// Interns `label`, returning the handle of its canonical copy. The first caller
    /// for a given string pays one allocation (the leaked canonical copy); every
    /// subsequent call is a read-locked hash lookup.
    pub fn intern(label: &str) -> LabelId {
        {
            let table = labels().read().expect("label interner poisoned");
            if let Some(&id) = table.by_value.get(label) {
                return LabelId(id);
            }
        }
        let mut table = labels().write().expect("label interner poisoned");
        // Double-check: another thread may have interned it between the locks.
        if let Some(&id) = table.by_value.get(label) {
            return LabelId(id);
        }
        let canonical: &'static str = Box::leak(label.to_owned().into_boxed_str());
        let id = u32::try_from(table.entries.len()).expect("label intern table overflow");
        table.entries.push(canonical);
        table.by_value.insert(canonical, id);
        LabelId(id)
    }

    /// Resolves the handle back to the interned string.
    ///
    /// # Panics
    /// Panics if the handle did not come from [`LabelId::intern`] in this process.
    pub fn as_str(self) -> &'static str {
        labels().read().expect("label interner poisoned").entries[self.0 as usize]
    }

    /// The raw table index (diagnostics only; indices are process-local).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl RankSet {
    /// Interns `ranks`, returning the handle of the canonical copy.
    pub fn intern(ranks: &[GpuId]) -> RankSet {
        {
            let table = rank_sets().read().expect("rank-set pool poisoned");
            if let Some(&id) = table.by_value.get(ranks) {
                return RankSet(id);
            }
        }
        let mut table = rank_sets().write().expect("rank-set pool poisoned");
        if let Some(&id) = table.by_value.get(ranks) {
            return RankSet(id);
        }
        let canonical: &'static [GpuId] = Box::leak(ranks.to_vec().into_boxed_slice());
        let id = u32::try_from(table.entries.len()).expect("rank-set pool overflow");
        table.entries.push(canonical);
        table.by_value.insert(canonical, id);
        RankSet(id)
    }

    /// Resolves the handle back to the pooled rank slice.
    ///
    /// # Panics
    /// Panics if the handle did not come from [`RankSet::intern`] in this process.
    pub fn ranks(self) -> &'static [GpuId] {
        rank_sets().read().expect("rank-set pool poisoned").entries[self.0 as usize]
    }

    /// Number of ranks in the set.
    pub fn len(self) -> usize {
        self.ranks().len()
    }

    /// True when the set is empty (never produced by the DAG builder, which rejects
    /// participant-less tasks, but interning an empty slice is well-defined).
    pub fn is_empty(self) -> bool {
        self.ranks().is_empty()
    }

    /// True when `rank` is a member.
    pub fn contains(self, rank: GpuId) -> bool {
        self.ranks().contains(&rank)
    }

    /// The first rank (the anchor used for rail affinity of compute tasks).
    ///
    /// # Panics
    /// Panics if the set is empty.
    pub fn first(self) -> GpuId {
        self.ranks()[0]
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// Handles serialize as the value they resolve to, so swapping `String` /
// `Vec<GpuId>` fields for handles leaves every serialized document byte-identical.
impl Serialize for LabelId {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Serialize for RankSet {
    fn to_value(&self) -> Value {
        Value::Seq(self.ranks().iter().map(Serialize::to_value).collect())
    }
}

impl<'de> Deserialize<'de> for LabelId {}
impl<'de> Deserialize<'de> for RankSet {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_labels() {
        let a = LabelId::intern("fwd s0 mb0 L0");
        let b = LabelId::intern("fwd s0 mb0 L0");
        let c = LabelId::intern("fwd s0 mb0 L1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "fwd s0 mb0 L0");
        assert_eq!(c.as_str(), "fwd s0 mb0 L1");
    }

    #[test]
    fn interning_deduplicates_rank_sets() {
        let a = RankSet::intern(&[GpuId(0), GpuId(4)]);
        let b = RankSet::intern(&[GpuId(0), GpuId(4)]);
        let c = RankSet::intern(&[GpuId(4), GpuId(0)]);
        assert_eq!(a, b);
        assert_ne!(a, c, "order is significant (ring order matters)");
        assert_eq!(a.ranks(), &[GpuId(0), GpuId(4)]);
        assert_eq!(a.len(), 2);
        assert!(a.contains(GpuId(4)));
        assert!(!a.contains(GpuId(1)));
        assert_eq!(a.first(), GpuId(0));
    }

    #[test]
    fn empty_rank_set_is_well_defined() {
        let e = RankSet::intern(&[]);
        assert!(e.is_empty());
        assert_eq!(e.ranks(), &[] as &[GpuId]);
    }

    #[test]
    fn handles_are_four_bytes() {
        assert_eq!(std::mem::size_of::<LabelId>(), 4);
        assert_eq!(std::mem::size_of::<RankSet>(), 4);
        assert_eq!(std::mem::size_of::<Option<LabelId>>(), 8);
    }

    #[test]
    fn serialization_matches_the_owned_representation() {
        use serde::Serialize as _;
        let label = LabelId::intern("sync-AR DP (grad norm)");
        assert_eq!(
            label.to_value(),
            "sync-AR DP (grad norm)".to_string().to_value()
        );
        let set = RankSet::intern(&[GpuId(3), GpuId(7)]);
        assert_eq!(set.to_value(), vec![GpuId(3), GpuId(7)].to_value());
    }

    #[test]
    fn display_resolves() {
        let label = LabelId::intern("optimizer step r0");
        assert_eq!(format!("{label}"), "optimizer step r0");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let ids: Vec<LabelId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| LabelId::intern("concurrent label")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for id in &ids {
            assert_eq!(*id, ids[0]);
            assert_eq!(id.as_str(), "concurrent label");
        }
    }
}
