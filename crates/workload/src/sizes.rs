//! Communication volume calculators (Table 2 of the paper).
//!
//! Each parallelism axis moves a different kind of tensor:
//!
//! | axis | forward | backward | volume |
//! |------|---------|----------|--------|
//! | DP   | —       | AllReduce of gradients | gradient bytes per layer/bucket |
//! | FSDP | AllGather of parameters | AllGather + ReduceScatter | parameter / gradient bytes per layer |
//! | TP (+SP) | AllReduce (or AG/RS) of activations | same | activation bytes per operator |
//! | CP   | AllGather of KV | ReduceScatter | KV-cache bytes per layer |
//! | PP   | Send/Recv of activations | Send/Recv of activation gradients | activation bytes per micro-batch |
//! | EP   | AllToAll of routed tokens | AllToAll | routed token bytes per layer |
//!
//! All functions return the *logical buffer size* as defined by the conventions in
//! [`railsim_collectives::cost`].

use crate::model::ModelConfig;
use crate::parallelism::{DataParallelKind, ParallelismConfig};
use railsim_sim::Bytes;

/// Sizes of the communication buffers for a specific (model, parallelism) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSizes {
    /// Bytes AllGathered per layer by FSDP in the forward pass (the full layer
    /// parameter shard owned by this TP column).
    pub fsdp_allgather_per_layer: Bytes,
    /// Bytes ReduceScattered per layer by FSDP in the backward pass (gradients, often
    /// at higher precision).
    pub fsdp_reducescatter_per_layer: Bytes,
    /// Bytes AllReduced per layer by plain DP in the backward pass.
    pub dp_allreduce_per_layer: Bytes,
    /// Bytes moved by one TP collective (activation AllReduce per operator pair).
    pub tp_allreduce_per_layer: Bytes,
    /// Bytes of one pipeline Send/Recv (activations of one micro-batch at the stage
    /// boundary).
    pub pp_sendrecv_per_microbatch: Bytes,
    /// Bytes AllGathered per layer by context parallelism (KV blocks).
    pub cp_allgather_per_layer: Bytes,
    /// Bytes exchanged per layer by expert parallelism (AllToAll of routed tokens).
    pub ep_alltoall_per_layer: Bytes,
    /// Bytes of one optimizer-phase synchronization AllReduce (grad-norm / loss scalar
    /// reductions — the "<1 MB" bucket of Fig. 4(b)).
    pub sync_allreduce: Bytes,
}

impl TrafficSizes {
    /// Derives all buffer sizes from the model and parallelism configuration.
    pub fn derive(model: &ModelConfig, parallel: &ParallelismConfig) -> Self {
        let dtype = model.dtype.bytes();
        let grad_dtype = model.grad_dtype.bytes();
        let tp = parallel.tensor.max(1) as u64;
        let cp = parallel.context.max(1) as u64;
        let dp = parallel.data.max(1) as u64;

        // Parameters of one layer owned by one TP column.
        let layer_params_per_tp = model.params_per_layer() / tp;

        // FSDP forward AllGather reassembles the full (TP-sharded) layer parameters.
        let fsdp_allgather_per_layer = Bytes::new(layer_params_per_tp * dtype);
        // Backward ReduceScatter reduces the layer gradients (fp32 master gradients).
        let fsdp_reducescatter_per_layer = Bytes::new(layer_params_per_tp * grad_dtype);
        // Plain DP AllReduces the same gradients.
        let dp_allreduce_per_layer = Bytes::new(layer_params_per_tp * grad_dtype);

        // Activation tensor of one micro-batch: mbs × seq × hidden elements.
        let activation_elems =
            parallel.microbatch_size as u64 * parallel.seq_len as u64 * model.hidden_size / cp;
        // TP AllReduce: two per layer (attention output + MLP output); we account for
        // both in a single per-layer figure.
        let tp_allreduce_per_layer = Bytes::new(2 * activation_elems * dtype);

        // Pipeline boundary activations. With sequence parallelism the activation is
        // sharded across the TP group before the Send/Recv.
        let pp_shard = if parallel.sequence_parallel { tp } else { 1 };
        let pp_sendrecv_per_microbatch = Bytes::new(activation_elems * dtype / pp_shard);

        // Context parallelism gathers KV blocks: 2 (K and V) × seq × kv_dim per
        // micro-batch, sharded across CP.
        let cp_allgather_per_layer = Bytes::new(
            2 * parallel.microbatch_size as u64 * parallel.seq_len as u64 * model.kv_dim() * dtype
                / cp.max(1),
        );

        // Expert parallelism: each token's hidden vector is routed to `experts_per_token`
        // experts; the AllToAll moves the full routed activation volume.
        let ep_alltoall_per_layer =
            Bytes::new(activation_elems * dtype * model.experts_per_token.max(1) as u64);

        // Optimizer-phase synchronization collectives: gradient-norm and loss scalars,
        // plus small mixed-precision bookkeeping — well under 1 MB.
        let sync_allreduce = Bytes::from_kb(64.min(64 * dp));

        TrafficSizes {
            fsdp_allgather_per_layer,
            fsdp_reducescatter_per_layer,
            dp_allreduce_per_layer,
            tp_allreduce_per_layer,
            pp_sendrecv_per_microbatch,
            cp_allgather_per_layer,
            ep_alltoall_per_layer,
            sync_allreduce,
        }
    }

    /// Total bytes AllGathered by FSDP over one pipeline stage (all its layers), i.e.
    /// the volume of one "DP AllGather" phase in Fig. 4(b).
    pub fn fsdp_allgather_per_stage(&self, layers_per_stage: u32) -> Bytes {
        self.fsdp_allgather_per_layer * layers_per_stage as u64
    }

    /// Total bytes ReduceScattered by FSDP over one pipeline stage.
    pub fn fsdp_reducescatter_per_stage(&self, layers_per_stage: u32) -> Bytes {
        self.fsdp_reducescatter_per_layer * layers_per_stage as u64
    }

    /// The per-axis volume used by plain data parallelism for one stage.
    pub fn dp_allreduce_per_stage(&self, layers_per_stage: u32) -> Bytes {
        self.dp_allreduce_per_layer * layers_per_stage as u64
    }

    /// The data-parallel collective volume per layer for the configured [`DataParallelKind`].
    pub fn dp_volume_per_layer(&self, kind: DataParallelKind) -> Bytes {
        match kind {
            DataParallelKind::AllReduce => self.dp_allreduce_per_layer,
            DataParallelKind::FullySharded => self.fsdp_reducescatter_per_layer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_sizes() -> TrafficSizes {
        TrafficSizes::derive(
            &ModelConfig::llama3_8b(),
            &ParallelismConfig::paper_llama3_8b(),
        )
    }

    #[test]
    fn paper_buckets_are_ordered_like_fig4b() {
        // Fig. 4(b): sync AR (<1 MB) < PP Send/Recv (~64 MB) < DP AllGather (~1 GB per
        // phase) < DP ReduceScatter (~4 GB per phase).
        let s = paper_sizes();
        let layers_per_stage = 16;
        let sync = s.sync_allreduce.as_mb_f64();
        let pp = s.pp_sendrecv_per_microbatch.as_mb_f64();
        let ag = s.fsdp_allgather_per_stage(layers_per_stage).as_mb_f64();
        let rs = s.fsdp_reducescatter_per_stage(layers_per_stage).as_mb_f64();
        assert!(sync < 1.0, "sync AR should be <1MB, got {sync}");
        assert!(
            (10.0..200.0).contains(&pp),
            "PP send/recv should be tens of MB, got {pp}"
        );
        assert!(
            (500.0..3000.0).contains(&ag),
            "DP AG phase should be ~1-2 GB, got {ag}"
        );
        assert!(
            (2000.0..6000.0).contains(&rs),
            "DP RS phase should be ~4 GB, got {rs}"
        );
        assert!(sync < pp && pp < ag && ag < rs);
    }

    #[test]
    fn reducescatter_uses_higher_precision_than_allgather() {
        let s = paper_sizes();
        // fp32 gradients vs bf16 parameters: exactly 2x.
        assert_eq!(
            s.fsdp_reducescatter_per_layer.as_u64(),
            2 * s.fsdp_allgather_per_layer.as_u64()
        );
    }

    #[test]
    fn sequence_parallelism_shards_pipeline_activations() {
        let model = ModelConfig::llama3_8b();
        let mut with_sp = ParallelismConfig::paper_llama3_8b();
        with_sp.sequence_parallel = true;
        let mut without_sp = with_sp.clone();
        without_sp.sequence_parallel = false;
        let a = TrafficSizes::derive(&model, &with_sp).pp_sendrecv_per_microbatch;
        let b = TrafficSizes::derive(&model, &without_sp).pp_sendrecv_per_microbatch;
        assert_eq!(
            b.as_u64(),
            a.as_u64() * 4,
            "SP shards the activation across TP=4"
        );
    }

    #[test]
    fn tensor_parallelism_reduces_per_gpu_parameter_traffic() {
        let model = ModelConfig::llama3_8b();
        let tp4 = ParallelismConfig::paper_llama3_8b();
        let mut tp1 = tp4.clone();
        tp1.tensor = 1;
        tp1.data = 8; // keep world size 16
        let s4 = TrafficSizes::derive(&model, &tp4);
        let s1 = TrafficSizes::derive(&model, &tp1);
        assert_eq!(
            s1.fsdp_allgather_per_layer.as_u64(),
            4 * s4.fsdp_allgather_per_layer.as_u64()
        );
    }

    #[test]
    fn moe_alltoall_scales_with_routed_experts() {
        let moe = ModelConfig::mixtral_8x7b();
        let dense = ModelConfig::llama3_8b();
        let p = ParallelismConfig::paper_llama3_8b();
        let s_moe = TrafficSizes::derive(&moe, &p);
        let s_dense = TrafficSizes::derive(&dense, &p);
        assert_eq!(
            s_moe.ep_alltoall_per_layer.as_u64(),
            2 * s_dense.ep_alltoall_per_layer.as_u64(),
            "top-2 routing doubles the AllToAll volume"
        );
    }

    #[test]
    fn context_parallelism_shards_activations_and_kv() {
        let model = ModelConfig::llama3_8b();
        let mut base = ParallelismConfig::paper_llama3_8b();
        base.data = 1;
        base.context = 2; // world size stays 16
        let with_cp = TrafficSizes::derive(&model, &base);
        let no_cp = TrafficSizes::derive(&model, &ParallelismConfig::paper_llama3_8b());
        assert!(with_cp.cp_allgather_per_layer < no_cp.cp_allgather_per_layer);
        assert!(with_cp.tp_allreduce_per_layer < no_cp.tp_allreduce_per_layer);
    }

    #[test]
    fn dp_volume_depends_on_kind() {
        let s = paper_sizes();
        assert_eq!(
            s.dp_volume_per_layer(DataParallelKind::AllReduce),
            s.dp_allreduce_per_layer
        );
        assert_eq!(
            s.dp_volume_per_layer(DataParallelKind::FullySharded),
            s.fsdp_reducescatter_per_layer
        );
    }
}
