//! Hybrid parallelism configurations.
//!
//! A [`ParallelismConfig`] describes how a training job is split across GPUs along the
//! five axes of Table 2: tensor (TP), context (CP), expert (EP), data (DP/FSDP) and
//! pipeline (PP) parallelism, plus the micro-batching parameters that drive the
//! pipeline schedule.

use railsim_collectives::ParallelismAxis;
use serde::{Deserialize, Serialize};

/// How data parallelism communicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataParallelKind {
    /// Plain data parallelism: one gradient AllReduce per layer (or bucket) in the
    /// backward pass.
    AllReduce,
    /// Fully sharded data parallelism: per-layer parameter AllGather in the forward
    /// (and backward) pass and gradient ReduceScatter in the backward pass.
    FullySharded,
}

/// A hybrid parallelism configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Tensor-parallel degree (confined to the scale-up domain in rail mappings).
    pub tensor: u32,
    /// Whether sequence parallelism accompanies TP (shards activations too).
    pub sequence_parallel: bool,
    /// Context-parallel degree.
    pub context: u32,
    /// Expert-parallel degree.
    pub expert: u32,
    /// Data-parallel degree.
    pub data: u32,
    /// How the data-parallel axis communicates.
    pub data_kind: DataParallelKind,
    /// Pipeline-parallel degree (number of stages).
    pub pipeline: u32,
    /// Number of micro-batches per iteration (per data-parallel replica).
    pub num_microbatches: u32,
    /// Sequences per micro-batch.
    pub microbatch_size: u32,
    /// Sequence length in tokens.
    pub seq_len: u32,
}

impl ParallelismConfig {
    /// The configuration of the paper's §3.1 / Fig. 8 experiment: Llama3-8B on 16 GPUs
    /// with TP=4 (intra-node), FSDP=2, PP=2, micro-batch size 2, 1F1B schedule.
    pub fn paper_llama3_8b() -> Self {
        ParallelismConfig {
            tensor: 4,
            sequence_parallel: true,
            context: 1,
            expert: 1,
            data: 2,
            data_kind: DataParallelKind::FullySharded,
            pipeline: 2,
            num_microbatches: 2,
            microbatch_size: 2,
            seq_len: 8192,
        }
    }

    /// The Fig. 3(b) variant: PP=3, FSDP=2 (24 GPUs with TP=4).
    pub fn paper_llama3_8b_pp3() -> Self {
        ParallelismConfig {
            pipeline: 3,
            num_microbatches: 3,
            ..Self::paper_llama3_8b()
        }
    }

    /// A simple DP-only configuration.
    pub fn data_only(data: u32) -> Self {
        ParallelismConfig {
            tensor: 1,
            sequence_parallel: false,
            context: 1,
            expert: 1,
            data,
            data_kind: DataParallelKind::AllReduce,
            pipeline: 1,
            num_microbatches: 1,
            microbatch_size: 1,
            seq_len: 4096,
        }
    }

    /// Total number of GPUs (world size).
    pub fn world_size(&self) -> u32 {
        self.tensor * self.context * self.expert * self.data * self.pipeline
    }

    /// Degree of the given axis.
    pub fn degree(&self, axis: ParallelismAxis) -> u32 {
        match axis {
            ParallelismAxis::Tensor => self.tensor,
            ParallelismAxis::Context => self.context,
            ParallelismAxis::Expert => self.expert,
            ParallelismAxis::Data => self.data,
            ParallelismAxis::Pipeline => self.pipeline,
        }
    }

    /// The axes with degree greater than one, in canonical order.
    pub fn active_axes(&self) -> Vec<ParallelismAxis> {
        ParallelismAxis::ALL
            .into_iter()
            .filter(|&a| self.degree(a) > 1)
            .collect()
    }

    /// Number of parallelism dimensions in use ("3D", "5D", ...).
    pub fn dimensionality(&self) -> usize {
        self.active_axes().len()
    }

    /// Tokens processed per iteration across the whole job.
    pub fn tokens_per_iteration(&self) -> u64 {
        self.microbatch_size as u64
            * self.num_microbatches as u64
            * self.seq_len as u64
            * self.data as u64
    }

    /// Global batch size in sequences.
    pub fn global_batch_size(&self) -> u64 {
        self.microbatch_size as u64 * self.num_microbatches as u64 * self.data as u64
    }

    /// Validates the configuration against a world size and basic sanity rules.
    pub fn validate(&self, world_size: u32) -> Result<(), String> {
        if self.tensor == 0
            || self.context == 0
            || self.expert == 0
            || self.data == 0
            || self.pipeline == 0
        {
            return Err("all parallelism degrees must be at least 1".into());
        }
        if self.world_size() != world_size {
            return Err(format!(
                "parallelism product {} does not match world size {world_size}",
                self.world_size()
            ));
        }
        if self.num_microbatches == 0 || self.microbatch_size == 0 {
            return Err("micro-batch count and size must be at least 1".into());
        }
        if self.pipeline > 1 && self.num_microbatches < self.pipeline {
            // Not fatal in practice, but the pipeline would be mostly bubbles; the
            // paper's schedules always use at least as many micro-batches as stages.
            return Err(format!(
                "1F1B needs num_microbatches ({}) >= pipeline stages ({})",
                self.num_microbatches, self.pipeline
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let p = ParallelismConfig::paper_llama3_8b();
        assert_eq!(p.world_size(), 16);
        assert_eq!(p.dimensionality(), 3);
        assert_eq!(
            p.active_axes(),
            vec![
                ParallelismAxis::Tensor,
                ParallelismAxis::Data,
                ParallelismAxis::Pipeline
            ]
        );
        assert!(p.validate(16).is_ok());
        assert_eq!(p.global_batch_size(), 8);
    }

    #[test]
    fn pp3_variant() {
        let p = ParallelismConfig::paper_llama3_8b_pp3();
        assert_eq!(p.world_size(), 24);
        assert!(p.validate(24).is_ok());
    }

    #[test]
    fn validation_catches_mismatched_world_size() {
        let p = ParallelismConfig::paper_llama3_8b();
        assert!(p.validate(32).is_err());
    }

    #[test]
    fn validation_catches_zero_degrees() {
        let mut p = ParallelismConfig::data_only(4);
        p.tensor = 0;
        assert!(p.validate(0).is_err());
    }

    #[test]
    fn validation_catches_too_few_microbatches() {
        let mut p = ParallelismConfig::paper_llama3_8b();
        p.num_microbatches = 1;
        assert!(p.validate(16).is_err());
    }

    #[test]
    fn tokens_per_iteration() {
        let p = ParallelismConfig::paper_llama3_8b();
        // 2 sequences * 2 microbatches * 8192 tokens * DP 2.
        assert_eq!(p.tokens_per_iteration(), 2 * 2 * 8192 * 2);
    }
}
