//! The inference-serving execution DAG.
//!
//! Training iterations are bulk-synchronous: every rank computes and communicates on
//! the same cadence, which is the regime the [`DagBuilder`](crate::DagBuilder) models.
//! Inference serving is different along every axis that matters to a reconfigurable
//! fabric: a request passes through a compute-heavy *prefill* phase (the whole prompt
//! at once) followed by many cheap *decode* steps (one token each), traffic arrives in
//! open-loop bursts rather than on an iteration clock, and capacity is provided by
//! independent *replicas* that an autoscaler grows and shrinks while the service runs.
//!
//! [`InferenceDagBuilder`] generates one *serving iteration* of such a deployment: for
//! each replica, a prefill pass through the pipeline stages (per-rank compute, a
//! tensor-parallel AllReduce per stage, activation point-to-point hops between stages)
//! followed by `decode_steps` pipelined decode passes with one-token traffic. The
//! result is an ordinary [`TrainingDag`] — the scenario driver executes it with the
//! same engine, circuits and controller as a training job — but with two structural
//! guarantees the elastic machinery relies on:
//!
//! * **No cross-replica tasks.** Every task's participants live inside one replica's
//!   rank slice, so the driver can mask replicas in and out between iterations
//!   (`JobGrow`/`JobShrink`) without dangling dependencies.
//! * **Replica-major rank layout.** Replica `r` occupies ranks
//!   `r * gpus_per_replica() ..`, so a task's replica is recoverable from its first
//!   participant — the property the scenario driver uses to build its replica mask.

use crate::arena::Arena;
use crate::compute::GpuSpec;
use crate::dag::{Task, TaskId, TaskKind, TrainingDag};
use crate::deps::DepList;
use crate::intern::{LabelId, RankSet};
use crate::model::ModelConfig;
use crate::parallelism::{DataParallelKind, ParallelismConfig};
use railsim_collectives::{CollectiveKind, CommGroup, GroupId, ParallelismAxis};
use railsim_sim::Bytes;
use railsim_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The shape of an inference deployment: model, intra-replica parallelism, replica
/// count, and the request-batch geometry of one serving iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// The served model.
    pub model: ModelConfig,
    /// Tensor-parallel degree inside a replica (kept in the scale-up domain, exactly
    /// like training TP under the rail mapping).
    pub tensor: u32,
    /// Pipeline stages per replica (activation hops between stages ride the rails).
    pub pipeline: u32,
    /// Maximum replica count. The DAG always contains every replica's tasks; the
    /// scenario driver masks replicas in and out as the deployment grows and shrinks.
    pub replicas: u32,
    /// Requests batched into one serving iteration per replica.
    pub batch_size: u32,
    /// Prompt length in tokens (the prefill phase processes the whole prompt).
    pub prefill_seq_len: u32,
    /// Decode steps modeled per serving iteration (one generated token each).
    pub decode_steps: u32,
}

impl InferenceConfig {
    /// A small Llama-3-8B-shaped serving preset: TP over `tensor` GPUs, `pipeline`
    /// stages, `replicas` replicas, 8-request batches, 512-token prompts and 4 decode
    /// steps per serving iteration.
    pub fn llama3_8b(tensor: u32, pipeline: u32, replicas: u32) -> Self {
        InferenceConfig {
            model: ModelConfig::llama3_8b(),
            tensor,
            pipeline,
            replicas,
            batch_size: 8,
            prefill_seq_len: 512,
            decode_steps: 4,
        }
    }

    /// A tiny-model preset for tests (same shape as [`ModelConfig::tiny_test`]).
    pub fn tiny_test(tensor: u32, pipeline: u32, replicas: u32) -> Self {
        InferenceConfig {
            model: ModelConfig::tiny_test(),
            tensor,
            pipeline,
            replicas,
            batch_size: 4,
            prefill_seq_len: 128,
            decode_steps: 2,
        }
    }

    /// GPUs per replica (`tensor * pipeline`).
    pub fn gpus_per_replica(&self) -> u32 {
        self.tensor * self.pipeline
    }

    /// Total GPUs of the deployment at full replica count.
    pub fn world_size(&self) -> u32 {
        self.gpus_per_replica() * self.replicas
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.tensor == 0 || self.pipeline == 0 || self.replicas == 0 {
            return Err("tensor, pipeline and replicas must all be at least 1".into());
        }
        if self.batch_size == 0 || self.prefill_seq_len == 0 {
            return Err("batch_size and prefill_seq_len must be at least 1".into());
        }
        if self.model.num_layers < self.pipeline {
            return Err(format!(
                "{} layers cannot fill {} pipeline stages",
                self.model.num_layers, self.pipeline
            ));
        }
        Ok(())
    }
}

/// Builds the serving-iteration DAG of an [`InferenceConfig`]; see the module docs
/// for the phase structure.
#[derive(Debug, Clone)]
pub struct InferenceDagBuilder {
    config: InferenceConfig,
    gpu: GpuSpec,
}

impl InferenceDagBuilder {
    /// Creates a builder for the given deployment shape, modeling compute on `gpu`.
    pub fn new(config: InferenceConfig, gpu: GpuSpec) -> Self {
        InferenceDagBuilder { config, gpu }
    }

    /// Builds the DAG of one serving iteration across all replicas.
    ///
    /// # Panics
    /// Panics when the configuration fails [`InferenceConfig::validate`].
    pub fn build(&self) -> TrainingDag {
        let cfg = &self.config;
        cfg.validate().expect("invalid inference configuration");
        let model = &cfg.model;
        let layers_per_stage = model.num_layers / cfg.pipeline;
        let act_bytes = |tokens: u64| {
            Bytes::new(tokens * cfg.batch_size as u64 * model.hidden_size * model.dtype.bytes())
        };
        // Per-rank stage compute: the stage's share of the layer stack, split over TP.
        let stage_compute = |tokens_per_request: u64, kv_len: u64| {
            let per_token = model.fwd_flops_per_token_per_layer(kv_len) as f64;
            let tokens = tokens_per_request * cfg.batch_size as u64;
            self.gpu.time_for_flops(
                per_token * tokens as f64 * layers_per_stage as f64 / cfg.tensor as f64,
            )
        };
        let prefill_compute = stage_compute(cfg.prefill_seq_len as u64, cfg.prefill_seq_len as u64);
        let decode_compute = stage_compute(1, cfg.prefill_seq_len as u64);
        let prefill_act = act_bytes(cfg.prefill_seq_len as u64);
        let decode_act = act_bytes(1);

        let mut tasks: Arena<Task> = Arena::new();
        let mut groups: BTreeMap<GroupId, CommGroup> = BTreeMap::new();
        let mut alloc = |kind: TaskKind, ranks: &[GpuId], deps: DepList, label: &str| {
            let id = TaskId(tasks.len() as u32);
            tasks.alloc(Task {
                id,
                kind,
                participants: RankSet::intern(ranks),
                deps,
                label: LabelId::intern(label),
                microbatch: None,
                layer: None,
            });
            id
        };

        for r in 0..cfg.replicas {
            let base = r * cfg.gpus_per_replica();
            let stage_ranks = |s: u32| -> Vec<GpuId> {
                (0..cfg.tensor)
                    .map(|t| GpuId(base + s * cfg.tensor + t))
                    .collect()
            };
            // One TP group per (replica, stage); ids are replica-major so two jobs'
            // groups stay disjoint after the scenario driver's group-id rebase.
            let tp_group = |s: u32| GroupId(r * cfg.pipeline + s);
            for s in 0..cfg.pipeline {
                let id = tp_group(s);
                groups.insert(
                    id,
                    CommGroup::new(id, ParallelismAxis::Tensor, stage_ranks(s)),
                );
            }

            // Prefill: compute -> TP AllReduce per stage, activations hop stages.
            let mut prev_hop: Option<TaskId> = None;
            // The last sync task of each stage in the previous pass, for decode deps.
            let mut stage_tail: Vec<TaskId> = Vec::with_capacity(cfg.pipeline as usize);
            for s in 0..cfg.pipeline {
                let ranks = stage_ranks(s);
                let mut compute_ids = Vec::with_capacity(ranks.len());
                for rank in &ranks {
                    let mut deps = DepList::new();
                    if let Some(hop) = prev_hop {
                        deps.push(hop);
                    }
                    compute_ids.push(alloc(
                        TaskKind::Compute {
                            duration: prefill_compute,
                        },
                        std::slice::from_ref(rank),
                        deps,
                        &format!("prefill r{r} s{s}"),
                    ));
                }
                let mut deps = DepList::new();
                for id in &compute_ids {
                    deps.push(*id);
                }
                let sync = alloc(
                    TaskKind::Collective {
                        group: tp_group(s),
                        kind: CollectiveKind::AllReduce,
                        axis: ParallelismAxis::Tensor,
                        bytes: prefill_act,
                    },
                    &ranks,
                    deps,
                    &format!("prefill-TP r{r} s{s}"),
                );
                stage_tail.push(sync);
                if s + 1 < cfg.pipeline {
                    let mut deps = DepList::new();
                    deps.push(sync);
                    let src = ranks[0];
                    let dst = GpuId(base + (s + 1) * cfg.tensor);
                    prev_hop = Some(alloc(
                        TaskKind::PointToPoint {
                            src,
                            dst,
                            axis: ParallelismAxis::Pipeline,
                            bytes: prefill_act,
                        },
                        &[src, dst],
                        deps,
                        &format!("prefill-act r{r} s{s}->s{}", s + 1),
                    ));
                }
            }

            // Decode: `decode_steps` pipelined one-token passes. Stage `s` of step `t`
            // waits for its own previous pass (KV cache ownership) and the token hop
            // from stage `s-1` of the same step.
            for t in 0..cfg.decode_steps {
                let mut hop: Option<TaskId> = None;
                for s in 0..cfg.pipeline {
                    let ranks = stage_ranks(s);
                    let mut compute_ids = Vec::with_capacity(ranks.len());
                    for rank in &ranks {
                        let mut deps = DepList::new();
                        deps.push(stage_tail[s as usize]);
                        if let Some(h) = hop {
                            deps.push(h);
                        }
                        compute_ids.push(alloc(
                            TaskKind::Compute {
                                duration: decode_compute,
                            },
                            std::slice::from_ref(rank),
                            deps,
                            &format!("decode r{r} t{t} s{s}"),
                        ));
                    }
                    let mut deps = DepList::new();
                    for id in &compute_ids {
                        deps.push(*id);
                    }
                    let sync = alloc(
                        TaskKind::Collective {
                            group: tp_group(s),
                            kind: CollectiveKind::AllReduce,
                            axis: ParallelismAxis::Tensor,
                            bytes: decode_act,
                        },
                        &ranks,
                        deps,
                        &format!("decode-TP r{r} t{t} s{s}"),
                    );
                    stage_tail[s as usize] = sync;
                    if s + 1 < cfg.pipeline {
                        let mut deps = DepList::new();
                        deps.push(sync);
                        let src = ranks[0];
                        let dst = GpuId(base + (s + 1) * cfg.tensor);
                        hop = Some(alloc(
                            TaskKind::PointToPoint {
                                src,
                                dst,
                                axis: ParallelismAxis::Pipeline,
                                bytes: decode_act,
                            },
                            &[src, dst],
                            deps,
                            &format!("decode-tok r{r} t{t} s{s}->s{}", s + 1),
                        ));
                    }
                }
            }
        }

        TrainingDag {
            tasks,
            groups,
            config: ParallelismConfig {
                tensor: cfg.tensor,
                sequence_parallel: false,
                context: 1,
                expert: 1,
                data: cfg.replicas,
                data_kind: DataParallelKind::AllReduce,
                pipeline: cfg.pipeline,
                num_microbatches: 1,
                microbatch_size: cfg.batch_size,
                seq_len: cfg.prefill_seq_len,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dag(tensor: u32, pipeline: u32, replicas: u32) -> TrainingDag {
        InferenceDagBuilder::new(
            InferenceConfig::tiny_test(tensor, pipeline, replicas),
            GpuSpec::a100(),
        )
        .build()
    }

    #[test]
    fn inference_dag_is_valid_and_covers_every_replica() {
        let dag = dag(2, 2, 3);
        assert!(dag.validate().is_ok());
        assert_eq!(dag.max_rank() + 1, 12);
        assert_eq!(dag.config.world_size(), 12);
        assert!(dag.topological_order().is_some());
    }

    #[test]
    fn tasks_never_cross_replicas() {
        let cfg = InferenceConfig::tiny_test(2, 2, 3);
        let per = cfg.gpus_per_replica();
        let dag = InferenceDagBuilder::new(cfg, GpuSpec::a100()).build();
        for task in &dag.tasks {
            let replica = task.ranks()[0].0 / per;
            for rank in task.ranks() {
                assert_eq!(rank.0 / per, replica, "task {} spans replicas", task.label);
            }
        }
    }

    #[test]
    fn pipeline_hops_ride_the_pipeline_axis() {
        let dag = dag(2, 2, 1);
        let hops: Vec<_> = dag
            .tasks
            .iter()
            .filter(|t| matches!(t.kind, TaskKind::PointToPoint { .. }))
            .collect();
        assert!(!hops.is_empty());
        for hop in hops {
            assert_eq!(hop.kind.axis(), Some(ParallelismAxis::Pipeline));
        }
    }

    #[test]
    fn prefill_moves_more_bytes_than_decode() {
        let dag = dag(2, 2, 1);
        let bytes_of = |prefix: &str| -> u64 {
            dag.tasks
                .iter()
                .filter(|t| t.label_str().starts_with(prefix))
                .map(|t| t.kind.bytes().as_u64())
                .sum()
        };
        assert!(bytes_of("prefill-TP") > bytes_of("decode-TP"));
    }

    #[test]
    fn replica_task_count_scales_linearly() {
        let one = dag(2, 2, 1).len();
        let three = dag(2, 2, 3).len();
        assert_eq!(three, 3 * one);
    }

    #[test]
    #[should_panic(expected = "invalid inference configuration")]
    fn zero_replicas_rejected() {
        let _ = dag(2, 2, 0);
    }
}
