//! Rule-of-thumb parallelism strategy selection (Table 1 of the paper).
//!
//! The paper's Table 1 summarizes the community's rule-of-thumb mapping from model size
//! and GPU count to parallelism strategies (following the Ultra-Scale Playbook [67]).
//! [`recommend`] reproduces that table and is used both by the `table1_strategies`
//! experiment binary and by examples that need a sensible default configuration.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parallelism strategy family, as named in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyFamily {
    /// Tensor parallelism only.
    Tp,
    /// Data parallelism only (including FSDP).
    Dp,
    /// Tensor + pipeline parallelism.
    TpPp,
    /// Tensor + data parallelism.
    TpDp,
    /// Data + pipeline parallelism.
    DpPp,
    /// Data + tensor parallelism.
    DpTp,
    /// Tensor + data + pipeline parallelism (full 3D).
    TpDpPp,
}

impl fmt::Display for StrategyFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StrategyFamily::Tp => "TP",
            StrategyFamily::Dp => "DP",
            StrategyFamily::TpPp => "TP & PP",
            StrategyFamily::TpDp => "TP & DP",
            StrategyFamily::DpPp => "DP & PP",
            StrategyFamily::DpTp => "DP & TP",
            StrategyFamily::TpDpPp => "TP, DP & PP",
        };
        f.write_str(s)
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyRecommendation {
    /// Model size classification used by the table.
    pub model_class: &'static str,
    /// GPU-count range description.
    pub gpu_range: &'static str,
    /// Recommended strategy families, in preference order.
    pub strategies: Vec<StrategyFamily>,
}

/// Recommends parallelism strategy families for a model of `params` parameters trained
/// on `num_gpus` GPUs, reproducing the paper's Table 1.
pub fn recommend(params: u64, num_gpus: u32) -> StrategyRecommendation {
    let small = params < 10_000_000_000;
    if small {
        // Small (<10B): N <= 8 — TP or DP. (Larger GPU counts for small models simply
        // scale the DP axis; the table only lists the N <= 8 row.)
        StrategyRecommendation {
            model_class: "Small (<10B)",
            gpu_range: "N <= 8",
            strategies: vec![StrategyFamily::Tp, StrategyFamily::Dp],
        }
    } else if num_gpus <= 512 {
        StrategyRecommendation {
            model_class: "Large (>10B)",
            gpu_range: "8 < N <= 512",
            strategies: vec![
                StrategyFamily::TpPp,
                StrategyFamily::TpDp,
                StrategyFamily::Dp,
            ],
        }
    } else if num_gpus <= 1024 {
        StrategyRecommendation {
            model_class: "Large (>10B)",
            gpu_range: "512 < N <= 1024",
            strategies: vec![StrategyFamily::DpPp, StrategyFamily::DpTp],
        }
    } else {
        StrategyRecommendation {
            model_class: "Large (>10B)",
            gpu_range: "N > 1024",
            strategies: vec![StrategyFamily::TpDpPp],
        }
    }
}

/// The full Table 1 as (model class, GPU range, strategies) rows.
pub fn table1_rows() -> Vec<StrategyRecommendation> {
    vec![
        recommend(8_000_000_000, 8),
        recommend(70_000_000_000, 512),
        recommend(70_000_000_000, 1024),
        recommend(405_000_000_000, 8192),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_models_use_tp_or_dp() {
        let rec = recommend(8_000_000_000, 8);
        assert_eq!(rec.strategies, vec![StrategyFamily::Tp, StrategyFamily::Dp]);
        assert_eq!(rec.model_class, "Small (<10B)");
    }

    #[test]
    fn mid_scale_large_models() {
        let rec = recommend(70_000_000_000, 256);
        assert!(rec.strategies.contains(&StrategyFamily::TpPp));
        assert!(rec.strategies.contains(&StrategyFamily::TpDp));
    }

    #[test]
    fn kilo_gpu_jobs_drop_tensor_first() {
        let rec = recommend(70_000_000_000, 1024);
        assert_eq!(rec.strategies[0], StrategyFamily::DpPp);
    }

    #[test]
    fn beyond_1024_gpus_needs_3d() {
        let rec = recommend(405_000_000_000, 8192);
        assert_eq!(rec.strategies, vec![StrategyFamily::TpDpPp]);
    }

    #[test]
    fn table_has_four_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].gpu_range, "N <= 8");
        assert_eq!(rows[3].gpu_range, "N > 1024");
    }

    #[test]
    fn boundary_conditions() {
        assert_eq!(recommend(10_000_000_001, 512).gpu_range, "8 < N <= 512");
        assert_eq!(recommend(10_000_000_001, 513).gpu_range, "512 < N <= 1024");
        assert_eq!(recommend(10_000_000_001, 1025).gpu_range, "N > 1024");
    }
}
