//! Per-parallelism traffic characterization (Table 2 of the paper).
//!
//! Table 2 summarizes, for every parallelism strategy, what it saves (memory, compute)
//! and what it costs in communication: which collectives, in which pass, at which
//! frequency. [`table2_rows`] reproduces that table for a concrete model and
//! parallelism configuration, attaching the actual per-collective byte counts computed
//! by [`crate::sizes::TrafficSizes`].

use crate::model::ModelConfig;
use crate::parallelism::ParallelismConfig;
use crate::sizes::TrafficSizes;
use railsim_collectives::CollectiveKind;
use railsim_sim::Bytes;
use serde::{Deserialize, Serialize};

/// When a collective fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pass {
    /// Forward pass only.
    Forward,
    /// Backward pass only.
    Backward,
    /// Both passes.
    Both,
}

/// How often a collective fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Frequency {
    /// Once per transformer layer.
    PerLayer,
    /// Once per operator (twice or more per layer).
    PerOperator,
    /// Once per micro-batch.
    PerMicrobatch,
    /// Once per model (per iteration).
    PerModel,
}

/// One row of Table 2: the communication profile of a parallelism strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismTrafficRow {
    /// Strategy name ("DP", "FSDP", "TP", "TP & SP", "CP", "PP", "EP").
    pub strategy: &'static str,
    /// What the strategy reduces in memory (free-text, mirrors the paper's table).
    pub memory_reduction: &'static str,
    /// What the strategy reduces in compute.
    pub compute_reduction: &'static str,
    /// The collectives it issues.
    pub collectives: Vec<CollectiveKind>,
    /// Which pass the collectives run in.
    pub pass: Pass,
    /// How often they fire.
    pub frequency: Frequency,
    /// Representative per-collective volume for the given model/parallelism.
    pub volume: Bytes,
}

/// Builds Table 2 for a concrete model and parallelism configuration.
pub fn table2_rows(
    model: &ModelConfig,
    parallel: &ParallelismConfig,
) -> Vec<ParallelismTrafficRow> {
    let sizes = TrafficSizes::derive(model, parallel);
    vec![
        ParallelismTrafficRow {
            strategy: "DP",
            memory_reduction: "gbs/dp",
            compute_reduction: "gbs/dp",
            collectives: vec![CollectiveKind::AllReduce],
            pass: Pass::Backward,
            frequency: Frequency::PerLayer,
            volume: sizes.dp_allreduce_per_layer,
        },
        ParallelismTrafficRow {
            strategy: "FSDP",
            memory_reduction: "gbs/dp, params/dp",
            compute_reduction: "gbs/dp",
            collectives: vec![CollectiveKind::AllGather, CollectiveKind::ReduceScatter],
            pass: Pass::Both,
            frequency: Frequency::PerLayer,
            volume: sizes.fsdp_allgather_per_layer,
        },
        ParallelismTrafficRow {
            strategy: "TP",
            memory_reduction: "params/tp, grads/tp, optims/tp",
            compute_reduction: "params/tp",
            collectives: vec![CollectiveKind::AllReduce],
            pass: Pass::Both,
            frequency: Frequency::PerOperator,
            volume: sizes.tp_allreduce_per_layer,
        },
        ParallelismTrafficRow {
            strategy: "TP & SP",
            memory_reduction: "params/tp, grads/tp, optims/tp, activs/tp",
            compute_reduction: "params/tp, activs/tp",
            collectives: vec![CollectiveKind::AllGather, CollectiveKind::ReduceScatter],
            pass: Pass::Both,
            frequency: Frequency::PerOperator,
            volume: sizes.tp_allreduce_per_layer,
        },
        ParallelismTrafficRow {
            strategy: "CP",
            memory_reduction: "kv_cache/cp, seq/cp",
            compute_reduction: "seq/cp",
            collectives: vec![CollectiveKind::AllGather, CollectiveKind::ReduceScatter],
            pass: Pass::Both,
            frequency: Frequency::PerLayer,
            volume: sizes.cp_allgather_per_layer,
        },
        ParallelismTrafficRow {
            strategy: "PP",
            memory_reduction: "params/pp, grads/pp, optims/pp, activs/pp",
            compute_reduction: "params/pp",
            collectives: vec![CollectiveKind::SendRecv],
            pass: Pass::Both,
            frequency: Frequency::PerMicrobatch,
            volume: sizes.pp_sendrecv_per_microbatch,
        },
        ParallelismTrafficRow {
            strategy: "EP",
            memory_reduction: "experts/ep",
            compute_reduction: "experts/ep",
            collectives: vec![CollectiveKind::AllToAll],
            pass: Pass::Both,
            frequency: Frequency::PerLayer,
            volume: sizes.ep_alltoall_per_layer,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ParallelismTrafficRow> {
        table2_rows(
            &ModelConfig::llama3_8b(),
            &ParallelismConfig::paper_llama3_8b(),
        )
    }

    #[test]
    fn table_has_all_seven_strategies() {
        let rows = rows();
        let names: Vec<&str> = rows.iter().map(|r| r.strategy).collect();
        assert_eq!(names, vec!["DP", "FSDP", "TP", "TP & SP", "CP", "PP", "EP"]);
    }

    #[test]
    fn collective_kinds_match_the_paper() {
        let rows = rows();
        let by_name = |n: &str| rows.iter().find(|r| r.strategy == n).unwrap();
        assert_eq!(by_name("DP").collectives, vec![CollectiveKind::AllReduce]);
        assert_eq!(
            by_name("FSDP").collectives,
            vec![CollectiveKind::AllGather, CollectiveKind::ReduceScatter]
        );
        assert_eq!(by_name("PP").collectives, vec![CollectiveKind::SendRecv]);
        assert_eq!(by_name("EP").collectives, vec![CollectiveKind::AllToAll]);
    }

    #[test]
    fn parameter_traffic_exceeds_activation_traffic_for_this_model() {
        // Layer parameters (FSDP) are larger than a micro-batch's boundary activations
        // (PP) for Llama3-8B at the paper's batch size.
        let rows = rows();
        let fsdp = rows.iter().find(|r| r.strategy == "FSDP").unwrap().volume;
        let pp = rows.iter().find(|r| r.strategy == "PP").unwrap().volume;
        assert!(fsdp > pp);
    }

    #[test]
    fn only_dp_is_backward_only() {
        let rows = rows();
        for row in &rows {
            if row.strategy == "DP" {
                assert_eq!(row.pass, Pass::Backward);
            } else {
                assert_ne!(
                    row.pass,
                    Pass::Backward,
                    "{} should not be backward-only",
                    row.strategy
                );
            }
        }
    }

    #[test]
    fn pp_is_the_only_per_microbatch_strategy() {
        let rows = rows();
        for row in &rows {
            let is_pp = row.strategy == "PP";
            assert_eq!(row.frequency == Frequency::PerMicrobatch, is_pp);
        }
    }
}
