//! Best-effort return of freed heap pages to the OS.
//!
//! glibc's allocator almost never gives memory back on `free`: its mmap
//! threshold adapts upward the first time a large freed block is observed, so
//! the multi-hundred-megabyte churn of a DAG build (arena chunks, spilled
//! dependency vectors, builder scratch) lands in the sbrk heap and stays
//! resident after it is freed. At the million-GPU scale that retention is
//! measured in gigabytes: the condensed run needs a fraction of the build's
//! peak, but RSS never comes back down. [`release_free_heap`] asks the
//! allocator to hand the freed pages back (`malloc_trim(0)`, which since
//! glibc 2.8 also releases whole free chunks in the middle of the heap via
//! `MADV_DONTNEED`) so the resident set tracks live bytes, not historical
//! churn.
//!
//! The call is advisory and free of semantic effect — allocations made after
//! it simply fault pages back in — so callers sprinkle it at phase seams:
//! after arena condensation, after scenario setup, between sweep points.

/// Returns freed heap pages to the OS where the platform allocator supports
/// it (glibc `malloc_trim`). A no-op elsewhere; never affects program
/// semantics, only resident-set size.
#[allow(unsafe_code)] // sole exception to the crate-wide deny: an advisory libc call
pub fn release_free_heap() {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    unsafe {
        unsafe extern "C" {
            fn malloc_trim(pad: usize) -> std::ffi::c_int;
        }
        malloc_trim(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_free_heap_is_safe_to_call_repeatedly() {
        // Semantics-free by contract: allocate, free, trim, allocate again.
        let big: Vec<u64> = (0..1_000_000).collect();
        let sum: u64 = big.iter().sum();
        drop(big);
        release_free_heap();
        release_free_heap();
        let again: Vec<u64> = (0..1_000_000).collect();
        assert_eq!(again.iter().sum::<u64>(), sum);
    }
}
