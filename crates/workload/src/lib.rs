//! # railsim-workload — ML training workload models
//!
//! This crate generates the *demand side* of the photonic-rails question: what does a
//! hybrid-parallel training iteration ask of the network, and in what order? It
//! provides:
//!
//! * [`ModelConfig`] — transformer shapes and presets (Llama 3 8B/70B/405B, GPT-3,
//!   Mixtral-style MoE),
//! * [`ParallelismConfig`] — TP/SP, CP, EP, DP/FSDP and PP degrees plus micro-batching,
//! * [`RankMapping`] — the rank layout that places TP inside the scale-up domain and
//!   DP/PP on the rails (Fig. 1 of the paper),
//! * [`TrafficSizes`] and [`traffic::table2_rows`] — per-axis communication volumes
//!   (Table 2),
//! * [`PipelineSchedule`] — 1F1B and GPipe schedules with warm-up/steady/cool-down
//!   phase classification (Fig. 3),
//! * [`DagBuilder`] / [`TrainingDag`] — the execution DAG of one training iteration
//!   (Fig. 2), consumed by the Opus simulator,
//! * [`InferenceDagBuilder`] / [`InferenceConfig`] — the serving workload class:
//!   prefill/decode phase structure over elastic replica groups (see [`inference`]),
//! * [`intern`] — the interned label symbol table and pooled rank sets that keep a
//!   100k-GPU DAG's per-task footprint at two 4-byte handles,
//! * [`strategy`] — the Table 1 rule-of-thumb strategy advisor,
//! * [`windows`] — the Eq. 1 closed-form window-count estimate.
//!
//! ```
//! use railsim_workload::{DagBuilder, ComputeModel, GpuSpec, ModelConfig, ParallelismConfig};
//!
//! let model = ModelConfig::llama3_8b();
//! let parallel = ParallelismConfig::paper_llama3_8b();
//! let compute = ComputeModel::derive(&model, &parallel, &GpuSpec::a100());
//! let dag = DagBuilder::new(model, parallel, compute).build();
//! assert!(dag.validate().is_ok());
//! assert!(dag.communication_tasks().count() > 0);
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the advisory
// `malloc_trim` FFI call in [`mem`] (see that module for why); everything else
// still fails to compile if it reaches for `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod compute;
pub mod dag;
pub mod deps;
pub mod inference;
pub mod intern;
pub mod mem;
pub mod model;
pub mod parallelism;
pub mod pipeline;
pub mod rank_map;
pub mod sizes;
pub mod strategy;
pub mod traffic;
pub mod windows;

pub use arena::{Arena, Handle};
pub use compute::{ComputeModel, GpuSpec};
pub use dag::{DagBuilder, JobId, Task, TaskArena, TaskId, TaskKind, TaskTable, TrainingDag};
pub use deps::{DepList, DEPS_INLINE};
pub use inference::{InferenceConfig, InferenceDagBuilder};
pub use intern::{LabelId, RankSet};
pub use mem::release_free_heap;
pub use model::{DType, ModelConfig};
pub use parallelism::{DataParallelKind, ParallelismConfig};
pub use pipeline::{PipelineOp, PipelinePhase, PipelineSchedule};
pub use rank_map::{Coords, RankMapping};
pub use sizes::TrafficSizes;
pub use strategy::{recommend, StrategyFamily, StrategyRecommendation};
pub use windows::{window_count, WindowCountBreakdown, WindowCountInputs};
