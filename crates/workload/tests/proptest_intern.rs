//! Property tests for the intern layer: round-tripping, pooling semantics, and the
//! guarantee that swapping owned `String` / `Vec<GpuId>` task fields for interned
//! handles left the serialized DAG byte-identical to the seed's string-labeled
//! layout.

use proptest::prelude::*;
use railsim_topology::GpuId;
use railsim_workload::{
    ComputeModel, DagBuilder, GpuSpec, LabelId, ModelConfig, ParallelismConfig, RankSet, Task,
    TaskId, TaskKind,
};
use serde::{Serialize, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn label_interning_round_trips_every_generated_label(
        bytes in proptest::collection::vec(0x20u8..0x7Fu8, 0..40),
    ) {
        // Arbitrary printable strings — including the empty string, punctuation-heavy
        // labels and whitespace runs — must resolve back to exactly themselves.
        let label = String::from_utf8(bytes).expect("printable ASCII is valid UTF-8");
        let id = LabelId::intern(&label);
        prop_assert_eq!(id.as_str(), label.as_str());
        // Interning again is stable and deduplicated.
        prop_assert_eq!(LabelId::intern(&label), id);
        // The serialized form is the plain string (what a `String` field produced).
        prop_assert_eq!(id.to_value(), Value::Str(label.clone()));
    }

    #[test]
    fn rank_set_interning_round_trips(ranks in proptest::collection::vec(0u32..100_000u32, 0..24)) {
        let gpus: Vec<GpuId> = ranks.iter().map(|&r| GpuId(r)).collect();
        let set = RankSet::intern(&gpus);
        prop_assert_eq!(set.ranks(), gpus.as_slice());
        prop_assert_eq!(set.len(), gpus.len());
        prop_assert_eq!(RankSet::intern(&gpus), set);
        prop_assert_eq!(set.to_value(), gpus.to_value());
    }

    #[test]
    fn distinct_labels_get_distinct_handles(
        a in proptest::collection::vec(97u8..123u8, 1..12),
        b in proptest::collection::vec(97u8..123u8, 1..12),
    ) {
        let a = String::from_utf8(a).expect("ascii");
        let b = String::from_utf8(b).expect("ascii");
        let (ia, ib) = (LabelId::intern(&a), LabelId::intern(&b));
        prop_assert_eq!(ia == ib, a == b);
    }
}

/// The owned-field mirror of [`Task`], shaped exactly like the seed's `Task` before
/// interning (same field names, same order, `String` label, `Vec<GpuId>`
/// participants).
#[derive(Serialize)]
struct OwnedTask {
    id: TaskId,
    kind: TaskKind,
    participants: Vec<GpuId>,
    deps: Vec<TaskId>,
    label: String,
    microbatch: Option<u32>,
    layer: Option<u32>,
}

impl OwnedTask {
    fn of(task: &Task) -> Self {
        OwnedTask {
            id: task.id,
            kind: task.kind.clone(),
            participants: task.ranks().to_vec(),
            deps: task.deps.to_vec(),
            label: task.label_str().to_owned(),
            microbatch: task.microbatch,
            layer: task.layer,
        }
    }
}

#[test]
fn interned_dag_serializes_byte_identically_to_the_string_labeled_layout() {
    let model = ModelConfig::tiny_test();
    let parallel = ParallelismConfig::paper_llama3_8b();
    let compute = ComputeModel::derive(&model, &parallel, &GpuSpec::a100());
    let dag = DagBuilder::new(model, parallel, compute).build();
    assert!(dag.len() > 100, "need a non-trivial DAG for the comparison");

    let interned: Vec<String> = dag
        .tasks
        .iter()
        .map(|t| serde_json::to_string_pretty(t).expect("task serializes"))
        .collect();
    let owned: Vec<String> = dag
        .tasks
        .iter()
        .map(|t| serde_json::to_string_pretty(&OwnedTask::of(t)).expect("mirror serializes"))
        .collect();
    assert_eq!(
        interned, owned,
        "interned tasks must serialize exactly like the owned-field layout"
    );

    // Spot-check the rendered JSON actually contains resolved strings, not handles.
    let sample = &interned[0];
    assert!(
        sample.contains("\"label\":"),
        "label field present: {sample}"
    );
    assert!(
        !sample.contains("LabelId") && !sample.contains("RankSet"),
        "no handle internals may leak into JSON: {sample}"
    );
}
