//! Process-memory introspection for the scale runs.
//!
//! The 100k-GPU regime is a memory-layout fight as much as a wall-clock one, so the
//! Table 3 scalability binary reports the peak resident set alongside events/sec.
//! On Linux the kernel tracks the high-water mark (`VmHWM` in `/proc/self/status`)
//! and allows resetting it between measurements via `/proc/self/clear_refs`, which
//! lets one process report a meaningful per-scale-point peak.

/// Peak resident set size (`VmHWM`) of this process in bytes, when the platform
/// exposes it (`None` off Linux or if procfs is unavailable).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Peak resident set in MiB (see [`peak_rss_bytes`]).
pub fn peak_rss_mib() -> Option<f64> {
    peak_rss_bytes().map(|b| b as f64 / (1024.0 * 1024.0))
}

/// Resets the kernel's peak-RSS watermark so the next [`peak_rss_bytes`] reading
/// reflects only allocations made after this call. Best-effort: returns `false`
/// where unsupported (non-Linux, restricted procfs), in which case subsequent peaks
/// are cumulative over the process lifetime.
pub fn reset_peak_rss() -> bool {
    // Writing "5" to clear_refs resets the peak-RSS counter (see proc(5)).
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_when_available() {
        if let Some(bytes) = peak_rss_bytes() {
            assert!(bytes > 0, "a running process has a resident set");
            assert!(peak_rss_mib().unwrap() > 0.0);
        }
    }

    #[test]
    fn reset_does_not_panic_and_keeps_readings_usable() {
        let _ = reset_peak_rss();
        // Whatever the platform said, a follow-up reading must still be well-formed.
        if let Some(bytes) = peak_rss_bytes() {
            assert!(bytes > 0);
        }
    }
}
