//! # railsim-bench — experiment harness for the photonic-rails reproduction
//!
//! Every table and figure of the paper's evaluation has a dedicated binary in
//! `src/bin/` that regenerates it (see DESIGN.md for the full index), plus a set of
//! criterion micro-benchmarks in `benches/`. This library holds what they share:
//!
//! * [`report`] — plain-text table rendering and JSON result files under `results/`,
//! * [`setups`] — the canonical experiment setups (the paper's Perlmutter cluster, the
//!   Llama3-8B 3D-parallel workload, the Fig. 8 latency sweep),
//! * [`mem`] — peak-RSS introspection for the memory-budget tracking of the scale runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mem;
pub mod report;
pub mod setups;

pub use mem::{peak_rss_bytes, peak_rss_mib, reset_peak_rss};
pub use report::Report;
pub use setups::{
    fig8_latencies_ms, paper_cluster, paper_compute, paper_dag, paper_dag_large_batch, paper_model,
    paper_parallelism, scale_gpu_counts, scale_run_config, scaled_cluster, scaled_cluster_100k,
    scaled_cluster_with_spare, scaled_dag, scaled_parallelism, SCALE_100K_GPUS,
};
