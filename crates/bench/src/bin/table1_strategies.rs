//! Table 1: rule-of-thumb LLM parallelism strategies by model size and GPU count.

use railsim_bench::Report;
use railsim_workload::strategy::table1_rows;

fn main() {
    let mut report = Report::new(
        "Table 1 — rule-of-thumb LLM parallelism strategies",
        &["Model size", "Compute (N GPUs)", "Practices"],
    );
    let rows = table1_rows();
    for rec in &rows {
        let strategies = rec
            .strategies
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", or ");
        report.row(&[
            rec.model_class.to_string(),
            rec.gpu_range.to_string(),
            strategies,
        ]);
    }
    report.print();
    Report::write_json("table1_strategies", &rows);
}
