//! Table 3: the OCS technology scalability–latency trade-off
//! (`#GPUs = scale-up size × radix / 2`), plus the datacenter-scale *simulated*
//! scalability runs that back it up: synthesized 1k–10k GPU clusters executed by the
//! sharded event engine under the electrical baseline and the provisioned optical
//! policy.
//!
//! ```text
//! table3_scalability [--gpus 1024,4096,10240,102400,1024000] [--iterations 2]
//!                    [--parallel-threads N] [--commit-threads N]
//!                    [--policy electrical|optical|replan|both]
//!                    [--scenario clean|rail-flap|two-job] [--no-memo] [--skip-sim]
//! ```
//!
//! `--gpus` accepts a comma-separated list of cluster sizes (positive multiples of
//! 64); the default runs the 1024-GPU point so the binary stays interactive, and the
//! CI scale-smoke steps run the 1k point sequentially, the 10k point with
//! `--parallel-threads`, the 10k point with `--policy optical`, and the 1k
//! `rail-flap` / `two-job` scenario points under `timeout 120`. The full paper regime
//! is `--gpus 1024,4096,10240`; `--gpus 102400` exercises the 100k-GPU ceiling
//! (interned DAG + dense controller state + port-indexed OCS matching; see
//! EXPERIMENTS.md for the memory budget); `--gpus 1024000` is the million-GPU
//! regime — a documented manual run (cold-arena compaction keeps it inside the
//! 12 GiB budget; see EXPERIMENTS.md). `--parallel-threads N` steps each head
//! time-slice on N scoped worker threads, and `--commit-threads N` commits each
//! drained batch's per-rail traffic on up to N rail-sharded workers — results are
//! byte-identical for any N on either knob.
//! `--policy` restricts a point to one network policy (the default runs the
//! electrical baseline and the provisioned optical policy back to back); `replan`
//! runs the provisioned optical policy with `RecoveryPolicy::Replan`, so a
//! `rail-flap` point reports the degraded-schedule inflation instead of the stall.
//!
//! `--scenario` selects what runs at each scale point (all three land in
//! `results/table3_scale.json`, tagged by the `scenario` field):
//!
//! * `clean` (default) — the classic single pristine job.
//! * `rail-flap` — the same job, plus a `RailDown(rail0)` → `RailUp` pulse a quarter
//!   into iteration 1 lasting half an iteration; the clean reference point is
//!   emitted alongside so the JSON carries the inflation.
//! * `two-job` — two half-size jobs packed side by side on the shared rails (needs a
//!   GPU count that is a positive multiple of 128); one row per job, fleet-level
//!   cross-job overlap counters attached.
//!
//! `--no-memo` disables steady-state iteration memoization (`memoize_steady_state`)
//! so many-iteration runs re-step every iteration — the naive control for measuring
//! the fast-forward speedup (both paths produce byte-identical metrics).
//!
//! `--skip-sim` prints only the OCS technology table.

use opus::{baseline_of, OpusConfig, RecoveryPolicy, Scenario, ScenarioEvent, ScenarioResult};
use railsim_bench::{mem, scale_run_config, scaled_cluster, scaled_dag, Report};
use railsim_cost::ocs_tech::{ocs_technologies, scaleup};
use railsim_topology::RailId;
use serde::Serialize;
use std::time::Instant;

/// One simulated scalability data point, written to `results/table3_scale.json`.
#[derive(Debug, Clone, Serialize)]
struct ScaleRun {
    num_gpus: u32,
    num_rails: u32,
    /// Which scenario produced the point: `clean`, `rail-flap` or `two-job`.
    scenario: &'static str,
    /// The job this row describes (0 except in multi-job scenarios).
    job: u32,
    /// Number of jobs sharing the fabric in this run.
    num_jobs: u32,
    event_shards: usize,
    parallel_threads: u32,
    /// Rail-sharded commit-phase worker count (1 = sequential commits).
    commit_threads: u32,
    policy: &'static str,
    dag_tasks: usize,
    iterations: u32,
    steady_iteration_time_s: f64,
    total_reconfigs: usize,
    /// Total circuit/outage wait of the job across all iterations, in seconds.
    circuit_wait_s: f64,
    /// Injected rail failures applied during the run (0 for clean runs).
    rail_failures: u64,
    /// Cross-job rail-overlap contention events, summed over rails (0 unless the
    /// scenario runs several jobs).
    cross_job_overlaps: u64,
    /// Wall clock of the whole scenario run this row came from (shared by every row
    /// of a multi-job run).
    wall_clock_s: f64,
    events_per_sec: f64,
    /// Peak resident set over DAG build + every run of this GPU count that the
    /// `--policy` filter selected, in MiB (kernel `VmHWM`, reset per scale point
    /// where the platform allows; `None` when procfs is unavailable).
    peak_rss_mib: Option<f64>,
    /// Lifetime circuits set up per rail (index == rail id); empty for the
    /// electrical policy. Makes reconfiguration churn visible per scale point
    /// instead of only through wall-clock time.
    circuits_set_up_by_rail: Vec<u64>,
    /// Lifetime circuits torn down per rail (index == rail id); empty for the
    /// electrical policy.
    circuits_torn_down_by_rail: Vec<u64>,
}

/// Which network policies a scale point runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PolicyFilter {
    Electrical,
    Optical,
    /// The provisioned optical policy with `RecoveryPolicy::Replan`.
    Replan,
    Both,
}

/// What runs at each scale point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScenarioKind {
    Clean,
    RailFlap,
    TwoJob,
}

impl ScenarioKind {
    fn name(self) -> &'static str {
        match self {
            ScenarioKind::Clean => "clean",
            ScenarioKind::RailFlap => "rail-flap",
            ScenarioKind::TwoJob => "two-job",
        }
    }
}

struct Args {
    gpus: Vec<u32>,
    iterations: u32,
    parallel_threads: u32,
    commit_threads: u32,
    policy: PolicyFilter,
    scenario: ScenarioKind,
    memoize: bool,
    skip_sim: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        gpus: vec![1024u32],
        iterations: 2,
        parallel_threads: 1,
        commit_threads: 1,
        policy: PolicyFilter::Both,
        scenario: ScenarioKind::Clean,
        memoize: true,
        skip_sim: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gpus" => {
                let list = args.next().expect("--gpus needs a comma-separated list");
                parsed.gpus = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--gpus entries must be integers"))
                    .collect();
            }
            "--iterations" => {
                parsed.iterations = args
                    .next()
                    .expect("--iterations needs a value")
                    .parse()
                    .expect("--iterations must be an integer");
                assert!(parsed.iterations > 0, "--iterations must be positive");
            }
            "--parallel-threads" => {
                parsed.parallel_threads = args
                    .next()
                    .expect("--parallel-threads needs a value")
                    .parse()
                    .expect("--parallel-threads must be an integer");
                assert!(
                    parsed.parallel_threads > 0,
                    "--parallel-threads must be positive"
                );
            }
            "--commit-threads" => {
                parsed.commit_threads = args
                    .next()
                    .expect("--commit-threads needs a value")
                    .parse()
                    .expect("--commit-threads must be an integer");
                assert!(
                    parsed.commit_threads > 0,
                    "--commit-threads must be positive"
                );
            }
            "--policy" => {
                parsed.policy = match args.next().expect("--policy needs a value").as_str() {
                    "electrical" => PolicyFilter::Electrical,
                    "optical" => PolicyFilter::Optical,
                    "replan" => PolicyFilter::Replan,
                    "both" => PolicyFilter::Both,
                    other => {
                        panic!("--policy must be electrical, optical, replan or both, got {other}")
                    }
                };
            }
            "--scenario" => {
                parsed.scenario = match args.next().expect("--scenario needs a value").as_str() {
                    "clean" => ScenarioKind::Clean,
                    "rail-flap" => ScenarioKind::RailFlap,
                    "two-job" => ScenarioKind::TwoJob,
                    other => panic!("--scenario must be clean, rail-flap or two-job, got {other}"),
                };
            }
            "--no-memo" => parsed.memoize = false,
            "--skip-sim" => parsed.skip_sim = true,
            other => panic!("unknown argument {other}; see the crate docs"),
        }
    }
    // The rail-flap pulse is placed relative to iteration 1, so only that scenario
    // needs a second iteration; clean and two-job runs stay valid with one.
    assert!(
        parsed.scenario != ScenarioKind::RailFlap || parsed.iterations >= 2,
        "--scenario rail-flap places its pulse relative to iteration 1; run at least 2 iterations"
    );
    parsed
}

fn tech_table() {
    let mut report = Report::new(
        "Table 3 — Opus scalability–latency tradeoff",
        &[
            "OCS Tech",
            "Reconfig. time (ms)",
            "Radix (ports)",
            "# GPUs (GB200)",
            "# GPUs (H200)",
        ],
    );
    let techs = ocs_technologies();
    for tech in &techs {
        report.row(&[
            tech.name.to_string(),
            format!("{:.5}", tech.reconfig_time.as_millis_f64()),
            tech.radix.to_string(),
            tech.max_gpus(scaleup::GB200).to_string(),
            tech.max_gpus(scaleup::H200).to_string(),
        ]);
    }
    report.note(
        "# GPUs = scale-up size x radix / 2 (2-port NIC configuration, bidirectional transceivers)",
    );
    report.note("the paper identifies Piezo and 3D MEMS as the sweet spot: tens of ms reconfiguration, hundreds of ports");
    report.print();
    Report::write_json("table3_scalability", &techs);
}

/// Flattens one scenario run into JSON rows (one per job).
#[allow(clippy::too_many_arguments)]
fn rows_of(
    result: &ScenarioResult,
    num_gpus: u32,
    num_rails: u32,
    scenario: &'static str,
    event_shards: usize,
    parallel_threads: u32,
    commit_threads: u32,
    policy: &'static str,
    dag_tasks: usize,
    iterations: u32,
    wall_clock_s: f64,
) -> Vec<ScaleRun> {
    let total_tasks: usize = dag_tasks * result.jobs.len();
    let events = 2.0 * total_tasks as f64 * iterations as f64;
    result
        .jobs
        .iter()
        .map(|job| ScaleRun {
            num_gpus,
            num_rails,
            scenario,
            job: job.job.0,
            num_jobs: result.jobs.len() as u32,
            event_shards,
            parallel_threads,
            commit_threads,
            policy,
            dag_tasks,
            iterations,
            steady_iteration_time_s: job.result.steady_state_iteration_time().as_secs_f64(),
            total_reconfigs: job.result.total_reconfigs(),
            circuit_wait_s: job
                .result
                .iterations
                .iter()
                .map(|i| i.total_circuit_wait.as_secs_f64())
                .sum(),
            rail_failures: result.fleet.rail_failures.iter().sum(),
            cross_job_overlaps: result.fleet.cross_job_rail_overlaps.iter().sum(),
            wall_clock_s,
            events_per_sec: events / wall_clock_s.max(1e-9),
            peak_rss_mib: None, // filled in once the whole point has run
            circuits_set_up_by_rail: result.fleet.circuits_set_up_by_rail.clone(),
            circuits_torn_down_by_rail: result.fleet.circuits_torn_down_by_rail.clone(),
        })
        .collect()
}

fn run_scale_point(
    num_gpus: u32,
    iterations: u32,
    parallel_threads: u32,
    commit_threads: u32,
    policy: PolicyFilter,
    scenario: ScenarioKind,
    memoize: bool,
) -> Vec<ScaleRun> {
    // Return the previous point's freed memory to the OS, then reset the kernel's
    // peak-RSS watermark so this point's reading covers only its own DAG +
    // simulator state (best-effort; cumulative where unsupported).
    railsim_workload::release_free_heap();
    mem::reset_peak_rss();
    let cluster = scaled_cluster(num_gpus);
    let num_rails = cluster.num_rails();
    let job_gpus = match scenario {
        ScenarioKind::TwoJob => {
            assert!(
                num_gpus.is_multiple_of(128),
                "--scenario two-job packs two half-size jobs; the GPU count must be a \
                 positive multiple of 128, got {num_gpus}"
            );
            num_gpus / 2
        }
        _ => num_gpus,
    };
    let build_start = Instant::now();
    let dag = scaled_dag(job_gpus);
    let dag_tasks = dag.len();
    eprintln!(
        "[{num_gpus} GPUs] built {dag_tasks}-task DAG in {:.2}s ({})",
        build_start.elapsed().as_secs_f64(),
        scenario.name(),
    );

    let mut provisioned = scale_run_config(iterations);
    if parallel_threads > 1 {
        provisioned.parallel_threads = Some(parallel_threads);
    }
    if commit_threads > 1 {
        provisioned.commit_threads = Some(commit_threads);
    }
    if !memoize {
        provisioned.memoize_steady_state = false;
    }
    let mut configs: Vec<(&'static str, OpusConfig)> = Vec::new();
    if matches!(policy, PolicyFilter::Electrical | PolicyFilter::Both) {
        configs.push(("electrical", baseline_of(&provisioned)));
    }
    if matches!(policy, PolicyFilter::Optical | PolicyFilter::Both) {
        configs.push(("optical provisioned 25ms", provisioned));
    }
    if policy == PolicyFilter::Replan {
        let mut replanned = provisioned;
        replanned.recovery_policy = RecoveryPolicy::Replan;
        configs.push(("optical provisioned 25ms replan", replanned));
    }
    // Move the DAG into its final use instead of cloning it everywhere: at 100k
    // GPUs a deep clone of the ~8.9M-task arena is seconds of memcpy and a
    // transient double-memory spike that would dominate the reported peak RSS.
    let uses_per_config = match scenario {
        ScenarioKind::Clean => 1,
        ScenarioKind::RailFlap | ScenarioKind::TwoJob => 2,
    };
    let total_uses = configs.len() * uses_per_config;
    let mut dag = Some(dag);
    let mut used = 0usize;
    let mut next_dag = move |dag: &mut Option<railsim_workload::TrainingDag>| {
        used += 1;
        if used == total_uses {
            dag.take().expect("each use consumes the DAG once")
        } else {
            dag.as_ref().expect("DAG still owned").clone()
        }
    };
    let mut runs = Vec::new();
    for (policy_name, config) in configs {
        match scenario {
            ScenarioKind::Clean => {
                let wall = Instant::now();
                let result = Scenario::new(cluster.clone())
                    .job(next_dag(&mut dag), config)
                    .run();
                let wall_clock_s = wall.elapsed().as_secs_f64();
                runs.extend(rows_of(
                    &result,
                    num_gpus,
                    num_rails,
                    "clean",
                    num_rails as usize,
                    parallel_threads,
                    commit_threads,
                    policy_name,
                    dag_tasks,
                    iterations,
                    wall_clock_s,
                ));
                eprintln!("[{num_gpus} GPUs] {policy_name}: {wall_clock_s:.2}s wall clock");
            }
            ScenarioKind::RailFlap => {
                // The clean reference run both calibrates the pulse (a quarter into
                // iteration 1, half an iteration long) and lands in the JSON so the
                // inflation is computable from the artifact alone.
                let wall = Instant::now();
                let clean = Scenario::new(cluster.clone())
                    .job(next_dag(&mut dag), config)
                    .run();
                let clean_wall = wall.elapsed().as_secs_f64();
                let it1 = &clean.jobs[0].result.iterations[1];
                let down = it1.started_at + it1.iteration_time.mul_f64(0.25);
                let up = down + it1.iteration_time.mul_f64(0.5);
                let wall = Instant::now();
                let flapped = Scenario::new(cluster.clone())
                    .job(next_dag(&mut dag), config)
                    .inject(down, ScenarioEvent::RailDown(RailId(0)))
                    .inject(up, ScenarioEvent::RailUp(RailId(0)))
                    .run();
                let flap_wall = wall.elapsed().as_secs_f64();
                runs.extend(rows_of(
                    &clean,
                    num_gpus,
                    num_rails,
                    "clean",
                    num_rails as usize,
                    parallel_threads,
                    commit_threads,
                    policy_name,
                    dag_tasks,
                    iterations,
                    clean_wall,
                ));
                runs.extend(rows_of(
                    &flapped,
                    num_gpus,
                    num_rails,
                    "rail-flap",
                    num_rails as usize,
                    parallel_threads,
                    commit_threads,
                    policy_name,
                    dag_tasks,
                    iterations,
                    flap_wall,
                ));
                eprintln!(
                    "[{num_gpus} GPUs] {policy_name}: clean {clean_wall:.2}s + rail-flap \
                     {flap_wall:.2}s wall clock"
                );
            }
            ScenarioKind::TwoJob => {
                let wall = Instant::now();
                let job_a = next_dag(&mut dag);
                let job_b = next_dag(&mut dag);
                let result = Scenario::new(cluster.clone())
                    .job(job_a, config)
                    .job(job_b, config)
                    .run();
                let wall_clock_s = wall.elapsed().as_secs_f64();
                runs.extend(rows_of(
                    &result,
                    num_gpus,
                    num_rails,
                    "two-job",
                    num_rails as usize,
                    parallel_threads,
                    commit_threads,
                    policy_name,
                    dag_tasks,
                    iterations,
                    wall_clock_s,
                ));
                eprintln!("[{num_gpus} GPUs] {policy_name} two-job: {wall_clock_s:.2}s wall clock");
            }
        }
    }
    let peak = mem::peak_rss_mib();
    if let Some(mib) = peak {
        eprintln!("[{num_gpus} GPUs] peak RSS {mib:.0} MiB");
    }
    for run in &mut runs {
        run.peak_rss_mib = peak;
    }
    runs
}

fn main() {
    let args = parse_args();
    tech_table();
    if args.skip_sim {
        return;
    }

    let mut report = Report::new(
        "Table 3 (simulated) — sharded-engine scalability runs",
        &[
            "# GPUs",
            "Scenario",
            "Job",
            "Policy",
            "DAG tasks",
            "Thr p/c",
            "Iter time (s)",
            "Reconfigs",
            "Circ wait (s)",
            "Fails",
            "Overlaps",
            "Wall clock (s)",
            "Peak RSS (MiB)",
        ],
    );
    let mut all_runs = Vec::new();
    for &n in &args.gpus {
        for run in run_scale_point(
            n,
            args.iterations,
            args.parallel_threads,
            args.commit_threads,
            args.policy,
            args.scenario,
            args.memoize,
        ) {
            report.row(&[
                run.num_gpus.to_string(),
                run.scenario.to_string(),
                run.job.to_string(),
                run.policy.to_string(),
                run.dag_tasks.to_string(),
                format!("{}/{}", run.parallel_threads, run.commit_threads),
                format!("{:.3}", run.steady_iteration_time_s),
                run.total_reconfigs.to_string(),
                format!("{:.3}", run.circuit_wait_s),
                run.rail_failures.to_string(),
                run.cross_job_overlaps.to_string(),
                format!("{:.2}", run.wall_clock_s),
                run.peak_rss_mib
                    .map_or_else(|| "n/a".to_string(), |m| format!("{m:.0}")),
            ]);
            all_runs.push(run);
        }
    }
    report.note("DGX H200 nodes, TP=8 / PP=8 / FSDP over the rest, 8 micro-batches, 1F1B");
    report.note("full paper regime: --gpus 1024,4096,10240; 100k ceiling: --gpus 102400; 1M regime: --gpus 1024000 --policy optical --commit-threads 4 (manual; see EXPERIMENTS.md)");
    report.note("scenarios: clean | rail-flap (RailDown pulse in iteration 1, clean reference emitted too) | two-job (two half-size jobs on shared rails)");
    let policies_note = match args.policy {
        PolicyFilter::Electrical => "the electrical run",
        PolicyFilter::Optical => "the optical run",
        PolicyFilter::Replan => "the optical replan run",
        PolicyFilter::Both => "both policies",
    };
    report.note(format!(
        "peak RSS covers DAG build + {policies_note} of the GPU count (VmHWM, reset per point)"
    ));
    report.note("per-rail circuit churn split is in the JSON (circuits_set_up_by_rail / circuits_torn_down_by_rail)");
    println!();
    report.print();
    Report::write_json("table3_scale", &all_runs);
}
