//! Table 3: the OCS technology scalability–latency trade-off
//! (`#GPUs = scale-up size × radix / 2`).

use railsim_bench::Report;
use railsim_cost::ocs_tech::{ocs_technologies, scaleup};

fn main() {
    let mut report = Report::new(
        "Table 3 — Opus scalability–latency tradeoff",
        &[
            "OCS Tech",
            "Reconfig. time (ms)",
            "Radix (ports)",
            "# GPUs (GB200)",
            "# GPUs (H200)",
        ],
    );
    let techs = ocs_technologies();
    for tech in &techs {
        report.row(&[
            tech.name.to_string(),
            format!("{:.5}", tech.reconfig_time.as_millis_f64()),
            tech.radix.to_string(),
            tech.max_gpus(scaleup::GB200).to_string(),
            tech.max_gpus(scaleup::H200).to_string(),
        ]);
    }
    report.note(
        "# GPUs = scale-up size x radix / 2 (2-port NIC configuration, bidirectional transceivers)",
    );
    report.note("the paper identifies Piezo and 3D MEMS as the sweet spot: tens of ms reconfiguration, hundreds of ports");
    report.print();
    Report::write_json("table3_scalability", &techs);
}
