//! Table 3: the OCS technology scalability–latency trade-off
//! (`#GPUs = scale-up size × radix / 2`), plus the datacenter-scale *simulated*
//! scalability runs that back it up: synthesized 1k–10k GPU clusters executed by the
//! sharded event engine under the electrical baseline and the provisioned optical
//! policy.
//!
//! ```text
//! table3_scalability [--gpus 1024,4096,10240,102400] [--iterations 2]
//!                    [--parallel-threads N] [--policy electrical|optical|both]
//!                    [--skip-sim]
//! ```
//!
//! `--gpus` accepts a comma-separated list of cluster sizes (positive multiples of
//! 64); the default runs the 1024-GPU point so the binary stays interactive, and the
//! CI scale-smoke steps run the 1k point sequentially, the 10k point with
//! `--parallel-threads`, and the 10k point with `--policy optical` under
//! `timeout 120`. The full paper regime is `--gpus 1024,4096,10240`;
//! `--gpus 102400` exercises the 100k-GPU ceiling (interned DAG + dense controller
//! state + port-indexed OCS matching; see EXPERIMENTS.md for the memory budget).
//! `--parallel-threads N` steps each head time-slice on N scoped worker threads —
//! results are byte-identical for any N. `--policy` restricts a point to one network
//! policy (the default runs the electrical baseline and the provisioned optical
//! policy back to back). `--skip-sim` prints only the OCS technology table.

use opus::{baseline_of, OpusConfig, OpusSimulator};
use railsim_bench::{mem, scale_run_config, scaled_cluster, scaled_dag, Report};
use railsim_cost::ocs_tech::{ocs_technologies, scaleup};
use serde::Serialize;
use std::time::Instant;

/// One simulated scalability data point, written to `results/table3_scale.json`.
#[derive(Debug, Clone, Serialize)]
struct ScaleRun {
    num_gpus: u32,
    num_rails: u32,
    event_shards: usize,
    parallel_threads: u32,
    policy: &'static str,
    dag_tasks: usize,
    iterations: u32,
    steady_iteration_time_s: f64,
    total_reconfigs: usize,
    wall_clock_s: f64,
    events_per_sec: f64,
    /// Peak resident set over DAG build + every policy run of this GPU count that the
    /// `--policy` filter selected, in MiB (kernel `VmHWM`, reset per scale point
    /// where the platform allows; `None` when procfs is unavailable).
    peak_rss_mib: Option<f64>,
    /// Lifetime circuits set up per rail (index == rail id); empty for the
    /// electrical policy. Makes reconfiguration churn visible per scale point
    /// instead of only through wall-clock time.
    circuits_set_up_by_rail: Vec<u64>,
    /// Lifetime circuits torn down per rail (index == rail id); empty for the
    /// electrical policy.
    circuits_torn_down_by_rail: Vec<u64>,
}

/// Which network policies a scale point runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PolicyFilter {
    Electrical,
    Optical,
    Both,
}

fn parse_args() -> (Vec<u32>, u32, u32, PolicyFilter, bool) {
    let mut gpus = vec![1024u32];
    let mut iterations = 2u32;
    let mut parallel_threads = 1u32;
    let mut policy = PolicyFilter::Both;
    let mut skip_sim = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gpus" => {
                let list = args.next().expect("--gpus needs a comma-separated list");
                gpus = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--gpus entries must be integers"))
                    .collect();
            }
            "--iterations" => {
                iterations = args
                    .next()
                    .expect("--iterations needs a value")
                    .parse()
                    .expect("--iterations must be an integer");
            }
            "--parallel-threads" => {
                parallel_threads = args
                    .next()
                    .expect("--parallel-threads needs a value")
                    .parse()
                    .expect("--parallel-threads must be an integer");
                assert!(parallel_threads > 0, "--parallel-threads must be positive");
            }
            "--policy" => {
                policy = match args.next().expect("--policy needs a value").as_str() {
                    "electrical" => PolicyFilter::Electrical,
                    "optical" => PolicyFilter::Optical,
                    "both" => PolicyFilter::Both,
                    other => panic!("--policy must be electrical, optical or both, got {other}"),
                };
            }
            "--skip-sim" => skip_sim = true,
            other => panic!("unknown argument {other}; see the crate docs"),
        }
    }
    (gpus, iterations, parallel_threads, policy, skip_sim)
}

fn tech_table() {
    let mut report = Report::new(
        "Table 3 — Opus scalability–latency tradeoff",
        &[
            "OCS Tech",
            "Reconfig. time (ms)",
            "Radix (ports)",
            "# GPUs (GB200)",
            "# GPUs (H200)",
        ],
    );
    let techs = ocs_technologies();
    for tech in &techs {
        report.row(&[
            tech.name.to_string(),
            format!("{:.5}", tech.reconfig_time.as_millis_f64()),
            tech.radix.to_string(),
            tech.max_gpus(scaleup::GB200).to_string(),
            tech.max_gpus(scaleup::H200).to_string(),
        ]);
    }
    report.note(
        "# GPUs = scale-up size x radix / 2 (2-port NIC configuration, bidirectional transceivers)",
    );
    report.note("the paper identifies Piezo and 3D MEMS as the sweet spot: tens of ms reconfiguration, hundreds of ports");
    report.print();
    Report::write_json("table3_scalability", &techs);
}

fn run_scale_point(
    num_gpus: u32,
    iterations: u32,
    parallel_threads: u32,
    policy: PolicyFilter,
) -> Vec<ScaleRun> {
    // Reset the kernel's peak-RSS watermark so this point's reading covers only its
    // own DAG + simulator state (best-effort; cumulative where unsupported).
    mem::reset_peak_rss();
    let cluster = scaled_cluster(num_gpus);
    let build_start = Instant::now();
    let dag = scaled_dag(num_gpus);
    let dag_tasks = dag.len();
    eprintln!(
        "[{num_gpus} GPUs] built {dag_tasks}-task DAG in {:.2}s",
        build_start.elapsed().as_secs_f64()
    );

    let mut provisioned = scale_run_config(iterations);
    if parallel_threads > 1 {
        provisioned = provisioned.with_parallel_threads(parallel_threads);
    }
    let mut configs: Vec<(&'static str, OpusConfig)> = Vec::new();
    if policy != PolicyFilter::Optical {
        configs.push(("electrical", baseline_of(&provisioned)));
    }
    if policy != PolicyFilter::Electrical {
        configs.push(("optical provisioned 25ms", provisioned));
    }
    let last = configs.len() - 1;
    // The last policy takes ownership of the DAG: at 10k GPUs a deep clone of the
    // ~900k-task arena is seconds of memcpy and a transient double-memory spike.
    let mut dag = Some(dag);
    let mut runs = Vec::new();
    for (i, (policy, config)) in configs.into_iter().enumerate() {
        let this_dag = if i == last {
            dag.take().expect("each config consumes the DAG once")
        } else {
            dag.as_ref().expect("DAG still owned").clone()
        };
        let wall = Instant::now();
        let mut sim = OpusSimulator::new(cluster.clone(), this_dag, config);
        let result = sim.run();
        let wall_clock_s = wall.elapsed().as_secs_f64();
        // Ready + Done per task per iteration.
        let events = 2.0 * dag_tasks as f64 * iterations as f64;
        let fabric = sim.controller().map(|c| c.fabric());
        let circuits_set_up_by_rail = fabric
            .map(|f| f.circuits_set_up_by_rail())
            .unwrap_or_default();
        let circuits_torn_down_by_rail = fabric
            .map(|f| f.circuits_torn_down_by_rail())
            .unwrap_or_default();
        runs.push(ScaleRun {
            num_gpus,
            num_rails: cluster.num_rails(),
            event_shards: sim.num_event_shards(),
            parallel_threads,
            policy,
            dag_tasks,
            iterations,
            steady_iteration_time_s: result.steady_state_iteration_time().as_secs_f64(),
            total_reconfigs: result.total_reconfigs(),
            wall_clock_s,
            events_per_sec: events / wall_clock_s.max(1e-9),
            peak_rss_mib: None, // filled in once the whole point has run
            circuits_set_up_by_rail,
            circuits_torn_down_by_rail,
        });
        eprintln!("[{num_gpus} GPUs] {policy}: {wall_clock_s:.2}s wall clock");
    }
    let peak = mem::peak_rss_mib();
    if let Some(mib) = peak {
        eprintln!("[{num_gpus} GPUs] peak RSS {mib:.0} MiB");
    }
    for run in &mut runs {
        run.peak_rss_mib = peak;
    }
    runs
}

fn main() {
    let (gpus, iterations, parallel_threads, policy, skip_sim) = parse_args();
    tech_table();
    if skip_sim {
        return;
    }

    let mut report = Report::new(
        "Table 3 (simulated) — sharded-engine scalability runs",
        &[
            "# GPUs",
            "Policy",
            "DAG tasks",
            "Shards",
            "Threads",
            "Iter time (s)",
            "Reconfigs",
            "Circ up/down",
            "Wall clock (s)",
            "Events/s",
            "Peak RSS (MiB)",
        ],
    );
    let mut all_runs = Vec::new();
    for &n in &gpus {
        for run in run_scale_point(n, iterations, parallel_threads, policy) {
            let churn = if run.circuits_set_up_by_rail.is_empty() {
                "-".to_string()
            } else {
                format!(
                    "{}/{}",
                    run.circuits_set_up_by_rail.iter().sum::<u64>(),
                    run.circuits_torn_down_by_rail.iter().sum::<u64>()
                )
            };
            report.row(&[
                run.num_gpus.to_string(),
                run.policy.to_string(),
                run.dag_tasks.to_string(),
                run.event_shards.to_string(),
                run.parallel_threads.to_string(),
                format!("{:.3}", run.steady_iteration_time_s),
                run.total_reconfigs.to_string(),
                churn,
                format!("{:.2}", run.wall_clock_s),
                format!("{:.0}", run.events_per_sec),
                run.peak_rss_mib
                    .map_or_else(|| "n/a".to_string(), |m| format!("{m:.0}")),
            ]);
            all_runs.push(run);
        }
    }
    report.note("DGX H200 nodes, TP=8 / PP=8 / FSDP over the rest, 8 micro-batches, 1F1B");
    report.note("full paper regime: --gpus 1024,4096,10240; 100k ceiling: --gpus 102400 (see EXPERIMENTS.md)");
    let policies_note = match policy {
        PolicyFilter::Electrical => "the electrical run",
        PolicyFilter::Optical => "the optical run",
        PolicyFilter::Both => "both policies",
    };
    report.note(format!(
        "peak RSS covers DAG build + {policies_note} of the GPU count (VmHWM, reset per point)"
    ));
    report.note("circ up/down: lifetime circuits set up / torn down (per-rail split in the JSON)");
    println!();
    report.print();
    Report::write_json("table3_scale", &all_runs);
}
