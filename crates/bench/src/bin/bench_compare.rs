//! Compares a fresh `BENCH_scale.json` against the committed perf baseline and fails
//! on regressions, so the perf trajectory the `bench` CI job tracks is *enforced*
//! rather than merely recorded.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [--max-regress 0.25]
//! ```
//!
//! Each bench present in the baseline must also be present in the fresh run and must
//! not be more than `--max-regress` (default 25 %) slower in ns/iter; a baseline
//! bench missing from the fresh run fails too (a silently vanished bench would
//! un-gate its hot path). Benches only present in the fresh run are reported but not
//! gated — they are additions the next baseline refresh picks up.
//!
//! The vendored serde has no deserializer, so the two documents are read with a
//! minimal field scanner that understands exactly the `bench_scale` output shape:
//! a `benches` array of objects with `"name"` and `"ns_per_iter"` fields.

use railsim_bench::Report;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts `name -> ns_per_iter` pairs from a `BENCH_scale.json` document.
fn parse_benches(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut current_name: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(value) = field_value(line, "name") {
            current_name = Some(value.trim_matches('"').to_string());
        } else if let Some(value) = field_value(line, "ns_per_iter") {
            if let (Some(name), Ok(ns)) = (current_name.take(), value.parse::<f64>()) {
                out.insert(name, ns);
            }
        }
    }
    out
}

/// The raw value of a `"key": value` line (trailing comma stripped), if it matches.
fn field_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(&format!("\"{key}\":"))?;
    Some(rest.trim().trim_end_matches(','))
}

fn read_benches(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("could not read bench report {path}: {e}"));
    let benches = parse_benches(&text);
    assert!(
        !benches.is_empty(),
        "no benches found in {path}; is it a bench_scale report?"
    );
    benches
}

fn main() -> ExitCode {
    let mut max_regress = 0.25f64;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regress" => {
                max_regress = args
                    .next()
                    .expect("--max-regress needs a value")
                    .parse()
                    .expect("--max-regress must be a fraction, e.g. 0.25");
            }
            other => files.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = files.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json> [--max-regress 0.25]");
        return ExitCode::FAILURE;
    };

    let baseline = read_benches(baseline_path);
    let fresh = read_benches(fresh_path);

    let mut report = Report::new(
        format!(
            "Perf baseline comparison (fail at +{:.0} %)",
            max_regress * 100.0
        ),
        &[
            "Bench",
            "Baseline ns/iter",
            "Fresh ns/iter",
            "Delta",
            "Verdict",
        ],
    );
    let mut regressions = Vec::new();
    for (name, &base_ns) in &baseline {
        match fresh.get(name) {
            Some(&fresh_ns) => {
                let delta = fresh_ns / base_ns - 1.0;
                let verdict = if delta > max_regress {
                    regressions.push(format!("{name}: {:+.1} %", delta * 100.0));
                    "REGRESSED"
                } else if delta < 0.0 {
                    "improved"
                } else {
                    "ok"
                };
                report.row(&[
                    name.clone(),
                    format!("{base_ns:.1}"),
                    format!("{fresh_ns:.1}"),
                    format!("{:+.1} %", delta * 100.0),
                    verdict.to_string(),
                ]);
            }
            None => {
                report.row(&[
                    name.clone(),
                    format!("{base_ns:.1}"),
                    "-".to_string(),
                    "-".to_string(),
                    "missing in fresh run".to_string(),
                ]);
                regressions.push(format!("{name}: missing from the fresh run"));
            }
        }
    }
    for name in fresh.keys().filter(|n| !baseline.contains_key(*n)) {
        report.row(&[
            name.clone(),
            "-".to_string(),
            format!("{:.1}", fresh[name]),
            "-".to_string(),
            "new bench (not gated)".to_string(),
        ]);
    }
    report.print();

    if regressions.is_empty() {
        println!(
            "bench_compare: all {} gated benches within budget",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_compare: {} regression(s) beyond {:.0} %:\n  {}",
            regressions.len(),
            max_regress * 100.0,
            regressions.join("\n  ")
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "git_sha": "abc",
  "gpu_count": 16,
  "benches": [
    {
      "name": "controller_alternating_requests_1k",
      "ns_per_iter": 449285.3,
      "iters": 446
    },
    {
      "name": "window_cdf_rail0",
      "ns_per_iter": 108.8,
      "iters": 1000000
    }
  ]
}"#;

    #[test]
    fn parses_bench_scale_reports() {
        let benches = parse_benches(SAMPLE);
        assert_eq!(benches.len(), 2);
        assert!((benches["controller_alternating_requests_1k"] - 449285.3).abs() < 1e-6);
        assert!((benches["window_cdf_rail0"] - 108.8).abs() < 1e-6);
    }

    #[test]
    fn ignores_non_bench_fields() {
        let benches = parse_benches("{\n\"git_sha\": \"x\",\n\"gpu_count\": 16\n}");
        assert!(benches.is_empty());
    }
}
