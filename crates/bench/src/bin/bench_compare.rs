//! Compares a fresh `BENCH_scale.json` against the committed perf baseline and fails
//! on regressions, so the perf trajectory the `bench` CI job tracks is *enforced*
//! rather than merely recorded.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [--max-regress 0.25]
//! ```
//!
//! Each bench present in the baseline must also be present in the fresh run and must
//! not be more than `--max-regress` (default 25 %) slower in ns/iter; a baseline
//! bench missing from the fresh run fails too (a silently vanished bench would
//! un-gate its hot path). Benches only present in the fresh run are reported but not
//! gated — they are additions the next baseline refresh picks up.
//!
//! Peak RSS is compared with the same threshold but only *warns*: the watermark is
//! allocator- and kernel-sensitive enough that failing CI on it would be flaky, but
//! a >25 % jump still deserves a human look, so it goes to stderr without flipping
//! the exit code.
//!
//! The vendored serde has no deserializer, so the two documents are read with a
//! minimal field scanner that understands exactly the `bench_scale` output shape:
//! a `benches` array of objects with `"name"`, `"ns_per_iter"` and (optionally)
//! `"peak_rss_mib"` fields.

use railsim_bench::Report;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One bench's measurements as scanned out of a `BENCH_scale.json` document.
#[derive(Debug, Clone, PartialEq)]
struct BenchEntry {
    ns_per_iter: f64,
    /// Absent in pre-RSS baselines and on platforms without procfs (`null` in JSON).
    peak_rss_mib: Option<f64>,
}

/// Extracts `name -> measurements` from a `BENCH_scale.json` document.
fn parse_benches(text: &str) -> BTreeMap<String, BenchEntry> {
    let mut out = BTreeMap::new();
    let mut current_name: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(value) = field_value(line, "name") {
            current_name = Some(value.trim_matches('"').to_string());
        } else if let Some(value) = field_value(line, "ns_per_iter") {
            if let (Some(name), Ok(ns)) = (current_name.as_ref(), value.parse::<f64>()) {
                out.insert(
                    name.clone(),
                    BenchEntry {
                        ns_per_iter: ns,
                        peak_rss_mib: None,
                    },
                );
            }
        } else if let Some(value) = field_value(line, "peak_rss_mib") {
            // `null` (no procfs / old report) fails the parse and stays None.
            if let (Some(name), Ok(mib)) = (current_name.as_ref(), value.parse::<f64>()) {
                if let Some(entry) = out.get_mut(name.as_str()) {
                    entry.peak_rss_mib = Some(mib);
                }
            }
        }
    }
    out
}

/// The raw value of a `"key": value` line (trailing comma stripped), if it matches.
fn field_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(&format!("\"{key}\":"))?;
    Some(rest.trim().trim_end_matches(','))
}

fn read_benches(path: &str) -> BTreeMap<String, BenchEntry> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("could not read bench report {path}: {e}"));
    let benches = parse_benches(&text);
    assert!(
        !benches.is_empty(),
        "no benches found in {path}; is it a bench_scale report?"
    );
    benches
}

fn main() -> ExitCode {
    let mut max_regress = 0.25f64;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regress" => {
                max_regress = args
                    .next()
                    .expect("--max-regress needs a value")
                    .parse()
                    .expect("--max-regress must be a fraction, e.g. 0.25");
            }
            other => files.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = files.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json> [--max-regress 0.25]");
        return ExitCode::FAILURE;
    };

    let baseline = read_benches(baseline_path);
    let fresh = read_benches(fresh_path);

    let mut report = Report::new(
        format!(
            "Perf baseline comparison (fail at +{:.0} %)",
            max_regress * 100.0
        ),
        &[
            "Bench",
            "Baseline ns/iter",
            "Fresh ns/iter",
            "Delta",
            "RSS delta",
            "Verdict",
        ],
    );
    let mut regressions = Vec::new();
    let mut rss_warnings = Vec::new();
    for (name, base) in &baseline {
        match fresh.get(name) {
            Some(fresh_entry) => {
                let delta = fresh_entry.ns_per_iter / base.ns_per_iter - 1.0;
                let verdict = if delta > max_regress {
                    regressions.push(format!("{name}: {:+.1} %", delta * 100.0));
                    "REGRESSED"
                } else if delta < 0.0 {
                    "improved"
                } else {
                    "ok"
                };
                let rss_delta = match (base.peak_rss_mib, fresh_entry.peak_rss_mib) {
                    (Some(base_mib), Some(fresh_mib)) if base_mib > 0.0 => {
                        let d = fresh_mib / base_mib - 1.0;
                        if d > max_regress {
                            rss_warnings.push(format!(
                                "{name}: peak RSS {base_mib:.1} -> {fresh_mib:.1} MiB ({:+.1} %)",
                                d * 100.0
                            ));
                        }
                        format!("{:+.1} %", d * 100.0)
                    }
                    _ => "-".to_string(),
                };
                report.row(&[
                    name.clone(),
                    format!("{:.1}", base.ns_per_iter),
                    format!("{:.1}", fresh_entry.ns_per_iter),
                    format!("{:+.1} %", delta * 100.0),
                    rss_delta,
                    verdict.to_string(),
                ]);
            }
            None => {
                report.row(&[
                    name.clone(),
                    format!("{:.1}", base.ns_per_iter),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "missing in fresh run".to_string(),
                ]);
                regressions.push(format!("{name}: missing from the fresh run"));
            }
        }
    }
    for name in fresh.keys().filter(|n| !baseline.contains_key(*n)) {
        report.row(&[
            name.clone(),
            "-".to_string(),
            format!("{:.1}", fresh[name].ns_per_iter),
            "-".to_string(),
            "-".to_string(),
            "new bench (not gated)".to_string(),
        ]);
    }
    report.print();

    if !rss_warnings.is_empty() {
        eprintln!(
            "bench_compare: WARNING: {} peak-RSS increase(s) beyond {:.0} % (not a gate):\n  {}",
            rss_warnings.len(),
            max_regress * 100.0,
            rss_warnings.join("\n  ")
        );
    }

    if regressions.is_empty() {
        println!(
            "bench_compare: all {} gated benches within budget",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_compare: {} regression(s) beyond {:.0} %:\n  {}",
            regressions.len(),
            max_regress * 100.0,
            regressions.join("\n  ")
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "git_sha": "abc",
  "gpu_count": 16,
  "benches": [
    {
      "name": "controller_alternating_requests_1k",
      "ns_per_iter": 449285.3,
      "iters": 446,
      "peak_rss_mib": 57.2
    },
    {
      "name": "window_cdf_rail0",
      "ns_per_iter": 108.8,
      "iters": 1000000,
      "peak_rss_mib": null
    }
  ]
}"#;

    #[test]
    fn parses_bench_scale_reports() {
        let benches = parse_benches(SAMPLE);
        assert_eq!(benches.len(), 2);
        let ctrl = &benches["controller_alternating_requests_1k"];
        assert!((ctrl.ns_per_iter - 449285.3).abs() < 1e-6);
        assert_eq!(ctrl.peak_rss_mib, Some(57.2));
        let cdf = &benches["window_cdf_rail0"];
        assert!((cdf.ns_per_iter - 108.8).abs() < 1e-6);
        assert_eq!(cdf.peak_rss_mib, None);
    }

    #[test]
    fn ignores_non_bench_fields() {
        let benches = parse_benches("{\n\"git_sha\": \"x\",\n\"gpu_count\": 16\n}");
        assert!(benches.is_empty());
    }
}
