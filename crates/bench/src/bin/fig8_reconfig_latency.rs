//! Fig. 8: normalized iteration time as a function of the OCS reconfiguration latency,
//! with and without provisioning, for the Llama3-8B 3D-parallel workload.
//!
//! The `latency = 0` case is the fully connected electrical baseline every other point
//! is normalized against.

use opus::{OpusConfig, OpusSimulator};
use railsim_bench::{fig8_latencies_ms, paper_cluster, paper_dag_large_batch, Report};
use railsim_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Point {
    reconfig_latency_ms: f64,
    normalized_without_provisioning: f64,
    normalized_with_provisioning: f64,
    reconfigs_per_iteration_on_demand: f64,
    reconfigs_per_iteration_provisioned: f64,
}

fn main() {
    const ITERATIONS: u32 = 3;
    fn run_config(mut base: OpusConfig) -> OpusConfig {
        base.iterations = ITERATIONS;
        base.compute_jitter = 0.0;
        base.seed = 1;
        base
    }
    let cluster = paper_cluster();
    let dag = paper_dag_large_batch();

    let baseline = OpusSimulator::new(
        cluster.clone(),
        dag.clone(),
        run_config(OpusConfig::electrical()),
    )
    .run();
    let baseline_time = baseline.steady_state_iteration_time();

    let mut report = Report::new(
        "Fig. 8 — normalized iteration time vs reconfiguration latency (Llama3-8B, TP=4, DP=PP=2)",
        &[
            "latency (ms)",
            "without provisioning",
            "with provisioning",
            "reconfigs/iter",
        ],
    );
    report.row(&[
        "0 (electrical baseline)".to_string(),
        "1.00".to_string(),
        "1.00".to_string(),
        "0".to_string(),
    ]);

    let mut points = Vec::new();
    for latency_ms in fig8_latencies_ms() {
        let latency = SimDuration::from_millis_f64(latency_ms);
        let on_demand = OpusSimulator::new(
            cluster.clone(),
            dag.clone(),
            run_config(OpusConfig::on_demand(latency)),
        )
        .run();
        let provisioned = OpusSimulator::new(
            cluster.clone(),
            dag.clone(),
            run_config(OpusConfig::provisioned(latency)),
        )
        .run();
        let norm_od =
            on_demand.steady_state_iteration_time().as_secs_f64() / baseline_time.as_secs_f64();
        let norm_pr =
            provisioned.steady_state_iteration_time().as_secs_f64() / baseline_time.as_secs_f64();
        let steady_iters = (ITERATIONS - 1).max(1) as f64;
        let reconf_od = on_demand
            .iterations
            .iter()
            .skip(1)
            .map(|i| i.reconfig_count())
            .sum::<usize>() as f64
            / steady_iters;
        let reconf_pr = provisioned
            .iterations
            .iter()
            .skip(1)
            .map(|i| i.reconfig_count())
            .sum::<usize>() as f64
            / steady_iters;
        report.row(&[
            format!("{latency_ms}"),
            format!("{norm_od:.3}"),
            format!("{norm_pr:.3}"),
            format!("{reconf_od:.0} / {reconf_pr:.0}"),
        ]);
        points.push(Fig8Point {
            reconfig_latency_ms: latency_ms,
            normalized_without_provisioning: norm_od,
            normalized_with_provisioning: norm_pr,
            reconfigs_per_iteration_on_demand: reconf_od,
            reconfigs_per_iteration_provisioned: reconf_pr,
        });
    }
    report.note(format!(
        "baseline (electrical) iteration time: {:.3} s",
        baseline_time.as_secs_f64()
    ));
    report.note("paper: 6.5% (without) / 3.5% (with provisioning) increase at 100 ms; 1.65x / 1.47x at 1000 ms");
    report.print();

    Report::write_json("fig8_reconfig_latency", &points);
}
