//! Ablation for constraints C2/C3: static NIC port partitioning vs Opus-style
//! time-multiplexing. Reproduces the paper's §3 worked example (DGX H200, ConnectX-7 in
//! 1/2/4-port mode, DP+PP(+CP) sharing the scale-out rail) and reports per-axis
//! bandwidth under a static split, next to the reconfiguration count a time-multiplexed
//! rail pays instead.

use opus::{OpusConfig, OpusSimulator};
use railsim_bench::{paper_dag, Report};
use railsim_collectives::{
    constraints::{AxisDemand, DegreeBudget},
    ParallelismAxis,
};
use railsim_sim::SimDuration;
use railsim_topology::{ClusterSpec, NicConfig, NodePreset};
use serde::Serialize;

#[derive(Serialize)]
struct PortRow {
    nic_mode: String,
    axes: String,
    static_feasible: bool,
    static_bandwidth_fraction: f64,
    infeasible_axes: String,
}

fn main() {
    let modes = [
        ("1x400G", NicConfig::connectx7_single(), 1usize),
        ("2x200G", NicConfig::connectx7_dual(), 2),
        ("4x100G", NicConfig::connectx7_quad(), 4),
    ];
    let axis_sets: [(&str, Vec<AxisDemand>); 2] = [
        (
            "DP + PP",
            vec![
                AxisDemand::ring(ParallelismAxis::Data, 8),
                AxisDemand::ring(ParallelismAxis::Pipeline, 8),
            ],
        ),
        (
            "DP + PP + CP",
            vec![
                AxisDemand::ring(ParallelismAxis::Data, 8),
                AxisDemand::ring(ParallelismAxis::Pipeline, 8),
                AxisDemand::ring(ParallelismAxis::Context, 8),
            ],
        ),
    ];

    let mut report = Report::new(
        "Ablation (C2/C3) — static NIC port partitioning on a photonic rail",
        &[
            "NIC mode",
            "scale-out axes",
            "static split feasible?",
            "BW fraction per axis",
            "axes that do not fit",
        ],
    );
    let mut rows = Vec::new();
    for (mode_name, nic, ports) in &modes {
        for (set_name, demands) in &axis_sets {
            let budget = DegreeBudget::new(*ports, nic.total_bandwidth.as_gbps());
            let analysis = budget.analyze(demands);
            let fraction = budget.even_split_fraction(demands.len());
            let infeasible = analysis
                .infeasible_axes()
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            report.row(&[
                mode_name.to_string(),
                set_name.to_string(),
                analysis.feasible.to_string(),
                format!("{fraction:.2}"),
                if infeasible.is_empty() {
                    "-".into()
                } else {
                    infeasible.clone()
                },
            ]);
            rows.push(PortRow {
                nic_mode: mode_name.to_string(),
                axes: set_name.to_string(),
                static_feasible: analysis.feasible,
                static_bandwidth_fraction: fraction,
                infeasible_axes: infeasible,
            });
        }
    }
    report.note(
        "paper §3: the 4-port split halves per-axis bandwidth (C3) and still cannot admit CP (C2)",
    );
    report.print();
    println!();

    // The time-multiplexed alternative: Opus gives the active axis the whole NIC and
    // pays reconfigurations instead. Count them on the paper workload with a 2-port NIC.
    let cluster = ClusterSpec::from_preset(NodePreset::PerlmutterA100, 4)
        .with_nic(NicConfig::slingshot11_dual())
        .build();
    let mut sim = OpusSimulator::new(cluster, paper_dag(), {
        let mut cfg = OpusConfig::provisioned(SimDuration::from_millis(25));
        cfg.iterations = 2;
        cfg.compute_jitter = 0.0;
        cfg.seed = 5;
        cfg
    });
    let result = sim.run();
    let mut tm = Report::new(
        "Time-multiplexed alternative (Opus, provisioned 25 ms OCS)",
        &["metric", "value"],
    );
    tm.row(&[
        "reconfigurations / iteration".into(),
        result
            .iterations
            .last()
            .map(|i| i.reconfig_count())
            .unwrap_or(0)
            .to_string(),
    ]);
    tm.row(&[
        "bandwidth available to the active axis".into(),
        "1.00 of the NIC".into(),
    ]);
    tm.print();

    Report::write_json("ablation_port_config", &rows);
}
