//! Ablation: what provisioning actually buys — circuit-wait time on the critical path,
//! reconfiguration counts and no-op request rates across policies, at a fixed
//! piezo-class (25 ms) switching delay.

use opus::{OpusConfig, OpusSimulator, ReconfigPolicy};
use railsim_bench::{paper_cluster, paper_dag, Report};
use railsim_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    policy: String,
    iteration_time_s: f64,
    total_circuit_wait_s: f64,
    reconfigs_per_iteration: f64,
    controller_requests: u64,
    noop_requests: u64,
}

fn main() {
    const ITERATIONS: u32 = 4;
    let cluster = paper_cluster();
    let dag = paper_dag();
    let latency = SimDuration::from_millis(25);

    let configs = [
        OpusConfig::electrical(),
        OpusConfig::on_demand(latency),
        OpusConfig::provisioned(latency),
    ];

    let mut report = Report::new(
        "Ablation — provisioning at a 25 ms piezo OCS (Llama3-8B, TP=4, DP=PP=2)",
        &[
            "policy",
            "iter time (s)",
            "circuit wait (s)",
            "reconfigs/iter",
            "requests",
            "no-op requests",
        ],
    );
    let mut rows = Vec::new();
    for config in configs {
        let mut sim = OpusSimulator::new(cluster.clone(), dag.clone(), {
            let mut cfg = config;
            cfg.iterations = ITERATIONS;
            cfg.compute_jitter = 0.0;
            cfg.seed = 3;
            cfg
        });
        let result = sim.run();
        let steady: Vec<_> = result.iterations.iter().skip(1).collect();
        let iter_time = result.steady_state_iteration_time().as_secs_f64();
        let wait: f64 = steady
            .iter()
            .map(|i| i.total_circuit_wait.as_secs_f64())
            .sum::<f64>()
            / steady.len() as f64;
        let reconfigs =
            steady.iter().map(|i| i.reconfig_count()).sum::<usize>() as f64 / steady.len() as f64;
        let (requests, noops) = sim
            .controller()
            .map(|c| (c.requests(), c.noop_requests()))
            .unwrap_or((0, 0));
        let name = match config.policy {
            ReconfigPolicy::Electrical => "electrical baseline",
            ReconfigPolicy::OnDemand => "optical, on-demand",
            ReconfigPolicy::Provisioned => "optical, provisioned",
        };
        report.row(&[
            name.to_string(),
            format!("{iter_time:.3}"),
            format!("{wait:.3}"),
            format!("{reconfigs:.1}"),
            requests.to_string(),
            noops.to_string(),
        ]);
        rows.push(AblationRow {
            policy: name.to_string(),
            iteration_time_s: iter_time,
            total_circuit_wait_s: wait,
            reconfigs_per_iteration: reconfigs,
            controller_requests: requests,
            noop_requests: noops,
        });
    }
    report.note("most controller requests are no-ops: Opus only reconfigures when the demand matrix changes (Objective 2)");
    report.print();
    Report::write_json("ablation_provisioning", &rows);
}
