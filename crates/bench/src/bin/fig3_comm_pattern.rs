//! Fig. 3: the per-rail PP/FSDP communication pattern of one iteration, split by the
//! warm-up / steady / cool-down pipeline phases, for (a) PP=2, FSDP=2 and (b) PP=3,
//! FSDP=2, together with the distinct circuit configurations each rail cycles through.

use opus::{phases_on_rail, OpusConfig, OpusSimulator};
use railsim_bench::Report;
use railsim_sim::SimDuration;
use railsim_topology::{ClusterSpec, NodePreset, RailId};
use railsim_workload::{
    ComputeModel, DagBuilder, GpuSpec, ModelConfig, ParallelismConfig, PipelineSchedule,
};
use serde::Serialize;

#[derive(Serialize)]
struct PhaseRow {
    variant: String,
    rail: u32,
    axis: String,
    start_ms: f64,
    end_ms: f64,
    bytes_mb: f64,
    operations: usize,
}

fn run_variant(name: &str, parallel: ParallelismConfig, rows: &mut Vec<PhaseRow>) {
    let nodes = parallel.world_size() / 4;
    let cluster = ClusterSpec::from_preset(NodePreset::PerlmutterA100, nodes).build();
    let model = ModelConfig::llama3_8b();
    let compute = ComputeModel::derive(&model, &parallel, &GpuSpec::a100());
    let dag = DagBuilder::new(model, parallel.clone(), compute).build();

    // Electrical fabric: Fig. 3 shows the application's intrinsic pattern.
    let mut config = OpusConfig::electrical();
    config.iterations = 1;
    config.compute_jitter = 0.0;
    config.seed = 1;
    let mut sim = OpusSimulator::new(cluster, dag, config);
    let result = sim.run();
    let it = &result.iterations[0];

    let mut report = Report::new(
        format!(
            "Fig. 3{name} — rail-0 communication phases (PP={}, FSDP={}, 1F1B, mb={})",
            parallel.pipeline, parallel.data, parallel.num_microbatches
        ),
        &["phase#", "axis", "start (ms)", "end (ms)", "volume", "ops"],
    );
    let phases = phases_on_rail(&it.comm_records, RailId(0));
    for (i, phase) in phases.iter().enumerate() {
        report.row(&[
            i.to_string(),
            phase.axis.to_string(),
            format!("{:.1}", phase.first_issue.as_millis_f64()),
            format!("{:.1}", phase.last_end.as_millis_f64()),
            phase.bytes.to_string(),
            phase.operations.to_string(),
        ]);
        rows.push(PhaseRow {
            variant: name
                .trim_start_matches(['(', ' '])
                .trim_end_matches(')')
                .to_string(),
            rail: 0,
            axis: phase.axis.to_string(),
            start_ms: phase.first_issue.as_millis_f64(),
            end_ms: phase.last_end.as_millis_f64(),
            bytes_mb: phase.bytes.as_mb_f64(),
            operations: phase.operations,
        });
    }
    // The distinct circuit configurations the rail cycles through = the number of
    // distinct communication groups that appear on it (Fig. 3's "circuit config" row).
    let mut groups: Vec<_> = it
        .comm_records
        .iter()
        .filter(|r| r.rails.contains(RailId(0)))
        .filter_map(|r| r.group)
        .collect();
    groups.sort();
    groups.dedup();
    report.note(format!(
        "distinct circuit configurations on rail 0: {} (one per communication group)",
        groups.len()
    ));
    let schedule = PipelineSchedule::OneFOneB;
    report.note(format!(
        "pipeline bubble fraction: {:.2}",
        schedule.bubble_fraction(parallel.pipeline, parallel.num_microbatches)
    ));
    report.note(format!(
        "iteration time: {}",
        SimDuration::from_secs_f64(it.iteration_time.as_secs_f64())
    ));
    report.print();
    println!();
}

fn main() {
    let mut rows = Vec::new();
    run_variant("(a)", ParallelismConfig::paper_llama3_8b(), &mut rows);
    run_variant("(b)", ParallelismConfig::paper_llama3_8b_pp3(), &mut rows);
    Report::write_json("fig3_comm_pattern", &rows);
}
