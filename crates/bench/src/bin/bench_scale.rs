//! Turns `cargo bench` output into the CI perf-baseline artifact `BENCH_scale.json`.
//!
//! The CI `bench` job runs the three perf-tracking criterion benches
//! (`iteration_sim`, `controller`, `window_extraction`), pipes their combined stdout
//! to a file, and then runs this binary over it:
//!
//! ```text
//! cargo bench --bench iteration_sim --bench controller --bench window_extraction \
//!     | tee bench.out
//! bench_scale bench.out [BENCH_scale.json]
//! ```
//!
//! The vendored criterion prints one
//! `bench: <name>  <ns> ns/iter (<iters> iters) peak_rss <mib> MiB` line per
//! benchmark (the peak-RSS pair is best-effort and absent off Linux); this parser
//! collects them and writes a JSON document with the ns/iter and peak RSS per bench,
//! the GPU count of the bench workload, and the git sha — the fields a perf
//! trajectory needs to compare runs across commits, time and memory both.

use railsim_bench::paper_cluster;
use serde::Serialize;
use std::process::Command;

/// One parsed benchmark measurement.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct BenchResult {
    name: String,
    ns_per_iter: f64,
    iters: u64,
    /// Per-bench peak resident set (`VmHWM` reset before the bench ran), when the
    /// platform reported one.
    peak_rss_mib: Option<f64>,
}

/// The `BENCH_scale.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    git_sha: String,
    /// GPU count of the canonical bench workload (the paper's 16-GPU testbed; the
    /// scale regime is tracked by `results/table3_scale.json`).
    gpu_count: u32,
    benches: Vec<BenchResult>,
}

/// Parses the vendored criterion's `bench:` lines.
fn parse_bench_lines(text: &str) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("bench:") else {
            continue;
        };
        // `<name>  <ns> ns/iter (<iters> iters)`
        let mut tokens = rest.split_whitespace();
        let Some(name) = tokens.next() else { continue };
        let Some(ns_token) = tokens.next() else {
            continue;
        };
        let Ok(ns_per_iter) = ns_token.parse::<f64>() else {
            continue;
        };
        if tokens.next() != Some("ns/iter") {
            continue;
        }
        let iters = tokens
            .next()
            .and_then(|t| t.trim_start_matches('(').parse::<u64>().ok())
            .unwrap_or(0);
        // Skip the closing `iters)` token; after it comes an optional
        // `peak_rss <mib> MiB` pair.
        let peak_rss_mib = match (tokens.next(), tokens.next(), tokens.next()) {
            (Some("iters)"), Some("peak_rss"), Some(mib)) => mib.parse::<f64>().ok(),
            _ => None,
        };
        out.push(BenchResult {
            name: name.to_string(),
            ns_per_iter,
            iters,
            peak_rss_mib,
        });
    }
    out
}

/// The commit being measured: `$GITHUB_SHA` in CI, `git rev-parse HEAD` locally.
fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let input = args
        .next()
        .expect("usage: bench_scale <bench-output-file> [out.json]");
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    let text = std::fs::read_to_string(&input)
        .unwrap_or_else(|e| panic!("could not read bench output {input}: {e}"));
    let benches = parse_bench_lines(&text);
    assert!(
        !benches.is_empty(),
        "no `bench: ... ns/iter` lines found in {input}; did cargo bench run?"
    );

    let report = BenchReport {
        git_sha: git_sha(),
        gpu_count: paper_cluster().num_gpus(),
        benches,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("could not write {out_path}: {e}"));
    println!(
        "wrote {out_path}: {} benches at sha {}",
        report.benches.len(),
        report.git_sha
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vendored_criterion_lines() {
        let text = "group: iteration_simulation\n\
                    bench: electrical_baseline                               123456.7 ns/iter (81 iters) peak_rss 101.5 MiB\n\
                    noise line\n\
                    bench: controller_alternating_requests_1k                  999.0 ns/iter (200000 iters)\n";
        let parsed = parse_bench_lines(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "electrical_baseline");
        assert!((parsed[0].ns_per_iter - 123456.7).abs() < 1e-6);
        assert_eq!(parsed[0].iters, 81);
        assert_eq!(parsed[0].peak_rss_mib, Some(101.5));
        assert_eq!(parsed[1].name, "controller_alternating_requests_1k");
        assert_eq!(parsed[1].peak_rss_mib, None);
    }

    #[test]
    fn ignores_malformed_lines() {
        let text = "bench: missing_numbers\nbench: bad 12x ns/iter (3 iters)\n";
        assert!(parse_bench_lines(text).is_empty());
    }
}
