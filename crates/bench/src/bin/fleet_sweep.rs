//! Fleet sweep: Monte Carlo capacity planning over the provisioning ladder.
//!
//! Evaluates a grid of scenario variants — provisioning levels × seeded
//! rail-failure traces — on the fleet service's worker pool and reports the
//! availability/cost frontier, with the cost axis priced by `railsim-cost`'s
//! provisioning ladder (component catalog + device-level DAC/ADC/laser tables).
//!
//! ```text
//! fleet_sweep [--gpus 256] [--variants 100] [--workers N] [--iterations 2]
//!             [--base-seed 42] [--verify-workers]
//! ```
//!
//! * `--gpus` — cluster size (positive multiple of 64; DGX H200 nodes).
//! * `--variants` — requested grid size; rounded up to a whole number of traces
//!   per provisioning level. The ladder is the 5 standard points plus a
//!   `+replan` twin (`RecoveryPolicy::Replan`, identical cost) for every optical
//!   point, so the frontier prices the failure-aware control plane directly.
//! * `--workers` — worker threads (default: available parallelism). The ordered
//!   results are byte-identical for any worker count.
//! * `--verify-workers` — additionally re-evaluate the sweep with 1 worker,
//!   assert the ordered results serialize identically, and report the speedup.
//!
//! The failure window calibrates itself from a clean electrical run: outages land
//! inside the job's real runtime, lasting 2–10 % of it. Results land in
//! `results/fleet_frontier.json`.

use opus::fleet::{FailureModel, FleetService, ProvisioningLevel, SweepSpec, VariantResult};
use opus::{JobPlacement, ReconfigPolicy, RecoveryPolicy};
use railsim_bench::{scaled_cluster_with_spare, scaled_dag, Report};
use railsim_cost::{standard_points, GpuBackendCostModel};
use railsim_sim::SimDuration;
use serde::Serialize;
use std::time::Instant;

/// The JSON payload of `results/fleet_frontier.json`.
#[derive(Debug, Serialize)]
struct FrontierReport {
    num_gpus: u32,
    iterations: u32,
    traces_per_level: u32,
    num_variants: usize,
    base_seed: u64,
    workers: u32,
    wall_seconds: f64,
    frontier: opus::fleet::Frontier,
    variants: Vec<VariantResult>,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let num_gpus: u32 = arg_value(&args, "--gpus")
        .map(|v| v.parse().expect("--gpus expects a number"))
        .unwrap_or(256);
    let requested_variants: usize = arg_value(&args, "--variants")
        .map(|v| v.parse().expect("--variants expects a number"))
        .unwrap_or(100);
    let iterations: u32 = arg_value(&args, "--iterations")
        .map(|v| v.parse().expect("--iterations expects a number"))
        .unwrap_or(2);
    let base_seed: u64 = arg_value(&args, "--base-seed")
        .map(|v| v.parse().expect("--base-seed expects a number"))
        .unwrap_or(42);
    let workers: u32 = arg_value(&args, "--workers")
        .map(|v| v.parse().expect("--workers expects a number"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1)
        });
    let verify_workers = args.iter().any(|a| a == "--verify-workers");

    // The provisioning ladder: electrical baseline + photonic points, priced by the
    // component catalog and the device-level tables.
    let cost_model = GpuBackendCostModel::dgx_h200_400g();
    let base_levels: Vec<ProvisioningLevel> = standard_points(&cost_model, num_gpus as u64)
        .into_iter()
        .map(|p| ProvisioningLevel {
            label: p.label,
            policy: if p.optical {
                ReconfigPolicy::Provisioned
            } else {
                ReconfigPolicy::Electrical
            },
            recovery: RecoveryPolicy::Stall,
            reconfig_latency: p.reconfig_latency,
            capex_usd: p.capex_usd,
            power_watts: p.power_watts,
        })
        .collect();
    // Every optical point gets a replan twin at identical cost, so the frontier
    // ranks the availability the failure-aware control plane buys per OCS class.
    let levels: Vec<ProvisioningLevel> = base_levels
        .iter()
        .cloned()
        .chain(
            base_levels
                .iter()
                .filter(|l| l.policy.is_optical())
                .map(|l| l.clone().with_recovery(RecoveryPolicy::Replan)),
        )
        .collect();
    // Two placement cells: the packed reference at GPU 0, and the same job shifted
    // half a node into the spare capacity. The half-node offset de-aligns every
    // rank from its standalone rail, so failure traces hit a genuinely different
    // circuit layout — the placement axis stops being a degenerate single cell.
    let placements = vec![JobPlacement::Auto, JobPlacement::AtGpu(4)];
    let cells = levels.len() * placements.len();
    let traces_per_level = (requested_variants.div_ceil(cells).max(2)) as u32;

    println!(
        "fleet sweep: {num_gpus} GPUs, {} levels x {} placements x {traces_per_level} traces = {} variants, {workers} workers",
        levels.len(),
        placements.len(),
        cells * traces_per_level as usize
    );

    // One spare node gives the shifted placement cell room at the top end.
    let service = FleetService::new(scaled_cluster_with_spare(num_gpus, 1));
    let template = format!("{num_gpus}-h200/llama3-8b-tp8-pp8-fsdp");
    service.dag_template(&template, || scaled_dag(num_gpus));

    // Calibrate the failure window from a clean electrical run so outages land
    // inside the job's actual runtime.
    let calibration = SweepSpec {
        template: template.clone(),
        base_seed,
        iterations,
        traces_per_level: 1,
        levels: vec![levels[0].clone()],
        ..SweepSpec::default()
    };
    let clean_end = service.evaluate(&calibration).variants[0].job_end;
    let runtime = SimDuration::from_nanos(clean_end.as_nanos().max(1));
    let failures = FailureModel {
        max_outages: 2,
        window: SimDuration::from_nanos(runtime.as_nanos() * 4 / 5),
        min_outage: SimDuration::from_nanos((runtime.as_nanos() / 50).max(1)),
        max_outage: SimDuration::from_nanos((runtime.as_nanos() / 10).max(1)),
    };
    println!(
        "calibration: clean runtime {runtime}, outage window {}",
        failures.window
    );

    let sweep = SweepSpec {
        template,
        base_seed,
        iterations,
        traces_per_level,
        levels,
        placements,
        failures,
        workers,
        ..SweepSpec::default()
    };

    let started = Instant::now();
    let mut done = 0usize;
    let total = sweep.num_variants();
    let report = service.evaluate_streaming(&sweep, |v| {
        done += 1;
        println!(
            "  [{done}/{total}] variant {:3}  level {} cell {} trace {:2}  job_end {}  waits {}",
            v.variant, v.level, v.placement, v.trace, v.job_end, v.circuit_wait
        );
    });
    let wall = started.elapsed().as_secs_f64();

    if verify_workers {
        let mut sequential = sweep.clone();
        sequential.workers = 1;
        let seq_started = Instant::now();
        let seq_report = service.evaluate(&sequential);
        let seq_wall = seq_started.elapsed().as_secs_f64();
        let pooled_bytes = serde_json::to_string_pretty(&report.variants).expect("serialize");
        let seq_bytes = serde_json::to_string_pretty(&seq_report.variants).expect("serialize");
        assert_eq!(
            pooled_bytes, seq_bytes,
            "worker count changed the ordered variant results"
        );
        println!(
            "worker check: {workers}-worker and 1-worker results byte-identical; wall {wall:.2}s vs {seq_wall:.2}s ({:.2}x)",
            seq_wall / wall.max(1e-9)
        );
    }

    let mut table = Report::new(
        "Availability/cost frontier",
        &[
            "level",
            "latency",
            "capex $",
            "power W",
            "availability",
            "P50 makespan",
            "P99 makespan",
            "pareto",
        ],
    );
    for level in &report.frontier.levels {
        table.row(&[
            level.label.clone(),
            format!("{}", level.reconfig_latency),
            format!("{:.0}", level.capex_usd),
            format!("{:.0}", level.power_watts),
            format!("{:.4}", level.availability),
            format!("{}", level.makespan.p50),
            format!("{}", level.makespan.p99),
            if level.pareto {
                "*".to_string()
            } else {
                String::new()
            },
        ]);
    }
    table.note(format!(
        "{total} variants in {wall:.2}s on {workers} workers; {} Pareto points",
        report.frontier.pareto_points()
    ));
    println!("{}", table.render());

    Report::write_json(
        "fleet_frontier",
        &FrontierReport {
            num_gpus,
            iterations,
            traces_per_level,
            num_variants: total,
            base_seed,
            workers,
            wall_seconds: wall,
            frontier: report.frontier,
            variants: report.variants,
        },
    );
}
