//! Fig. 4: (a) the CDF of inter-parallelism window sizes per rail over 10 iterations,
//! and (b) the per-iteration window count and mean size bucketed by the traffic volume
//! of the phase that follows each window.

use opus::{
    default_traffic_buckets_mb, window_cdf, windows_by_following_traffic, windows_on_rail,
    OpusConfig, OpusSimulator,
};
use railsim_bench::{paper_cluster, paper_dag, Report};
use railsim_topology::RailId;
use serde::Serialize;

#[derive(Serialize)]
struct CdfPoint {
    rail: u32,
    window_ms: f64,
    cumulative_fraction: f64,
}

#[derive(Serialize)]
struct BucketRow {
    bucket: String,
    windows_per_iteration: f64,
    mean_window_ms: f64,
}

fn main() {
    const ITERATIONS: u32 = 10;
    let cluster = paper_cluster();
    let dag = paper_dag();
    // Fig. 4 was measured on the electrical fabric (the windows are a property of the
    // application schedule, not of the network).
    let mut config = OpusConfig::electrical();
    config.iterations = ITERATIONS;
    config.compute_jitter = 0.05;
    config.seed = 42;
    let mut sim = OpusSimulator::new(cluster.clone(), dag, config);
    let result = sim.run();

    // (a) CDF of window sizes per rail.
    let mut cdf_report = Report::new(
        "Fig. 4(a) — CDF of inter-parallelism window sizes (10 iterations)",
        &[
            "rail",
            "windows",
            "p25 (ms)",
            "median (ms)",
            "p75 (ms)",
            "fraction > 1 ms",
        ],
    );
    let mut cdf_points = Vec::new();
    for rail in cluster.all_rails() {
        let mut windows = Vec::new();
        for it in &result.iterations {
            windows.extend(windows_on_rail(&it.comm_records, rail));
        }
        let cdf = window_cdf(&windows);
        cdf_report.row(&[
            format!("{rail}"),
            cdf.count().to_string(),
            format!("{:.2}", cdf.quantile(0.25).unwrap_or(0.0)),
            format!("{:.2}", cdf.quantile(0.5).unwrap_or(0.0)),
            format!("{:.2}", cdf.quantile(0.75).unwrap_or(0.0)),
            format!("{:.2}", cdf.fraction_above(1.0)),
        ]);
        for (value, fraction) in cdf.points() {
            cdf_points.push(CdfPoint {
                rail: rail.0,
                window_ms: value,
                cumulative_fraction: fraction,
            });
        }
    }
    cdf_report.note("paper: >75% of windows exceed 1 ms and rails behave alike");
    cdf_report.print();
    println!();

    // (b) Rail-0 windows bucketed by the following phase's traffic volume.
    let rail0_windows: Vec<_> = result
        .iterations
        .iter()
        .flat_map(|it| windows_on_rail(&it.comm_records, RailId(0)))
        .collect();
    let buckets = windows_by_following_traffic(&rail0_windows, default_traffic_buckets_mb());
    let labels = [
        "<1 MB (sync AR)",
        "1-200 MB (PP Send/Recv)",
        "0.2-2.5 GB (DP AllGather)",
        ">2.5 GB (DP ReduceScatter)",
    ];
    let mut bucket_report = Report::new(
        "Fig. 4(b) — rail-0 windows by following traffic volume",
        &[
            "traffic after window",
            "windows / iteration",
            "avg window (ms)",
        ],
    );
    let mut bucket_rows = Vec::new();
    for (summary, label) in buckets.buckets().iter().zip(labels) {
        let per_iter = summary.count() as f64 / ITERATIONS as f64;
        let mean = summary.mean().unwrap_or(0.0);
        bucket_report.row(&[
            label.to_string(),
            format!("{per_iter:.1}"),
            format!("{mean:.1}"),
        ]);
        bucket_rows.push(BucketRow {
            bucket: label.to_string(),
            windows_per_iteration: per_iter,
            mean_window_ms: mean,
        });
    }
    bucket_report
        .note("paper: the largest following traffic (ReduceScatter) sees the largest windows");
    bucket_report.print();

    Report::write_json("fig4a_window_cdf", &cdf_points);
    Report::write_json("fig4b_window_buckets", &bucket_rows);
}
