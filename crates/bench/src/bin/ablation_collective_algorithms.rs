//! Ablation for constraint C1: collective algorithm choice vs message size and group
//! size. Rings are the only algorithm a degree-2 photonic rail can run; this sweep
//! quantifies what is lost (latency-bound collectives) and gained (bandwidth-bound
//! collectives) relative to the tree and halving-doubling algorithms an electrical
//! fabric could use.

use railsim_bench::Report;
use railsim_collectives::{
    cost::{collective_time, CostParams},
    Algorithm, CollectiveKind,
};
use railsim_sim::{Bandwidth, Bytes, SimDuration};
use serde::Serialize;

#[derive(Serialize)]
struct AlgoRow {
    group_size: usize,
    message: String,
    ring_ms: f64,
    tree_ms: f64,
    halving_doubling_ms: f64,
    ring_required_degree: usize,
    tree_required_degree: usize,
}

fn main() {
    let params = CostParams::new(SimDuration::from_micros(10), Bandwidth::from_gbps(400.0));
    let group_sizes = [4usize, 16, 64, 256, 1024];
    let messages = [
        ("64 KB", Bytes::from_kb(64)),
        ("64 MB", Bytes::from_mb(64)),
        ("1 GB", Bytes::from_gb(1)),
        ("4 GB", Bytes::from_gb(4)),
    ];

    let mut report = Report::new(
        "Ablation (C1) — AllReduce algorithm completion time (400 Gbps links)",
        &[
            "group",
            "message",
            "ring (ms)",
            "tree (ms)",
            "halving-doubling (ms)",
            "ring degree",
            "tree degree",
        ],
    );
    let mut rows = Vec::new();
    for &p in &group_sizes {
        for (label, bytes) in messages {
            let time = |a: Algorithm| {
                collective_time(CollectiveKind::AllReduce, a, p, bytes, &params).as_millis_f64()
            };
            let ring = time(Algorithm::Ring);
            let tree = time(Algorithm::DoubleBinaryTree);
            let hd = time(Algorithm::HalvingDoubling);
            report.row(&[
                p.to_string(),
                label.to_string(),
                format!("{ring:.3}"),
                format!("{tree:.3}"),
                format!("{hd:.3}"),
                Algorithm::Ring.required_degree(p).to_string(),
                Algorithm::DoubleBinaryTree.required_degree(p).to_string(),
            ]);
            rows.push(AlgoRow {
                group_size: p,
                message: label.to_string(),
                ring_ms: ring,
                tree_ms: tree,
                halving_doubling_ms: hd,
                ring_required_degree: Algorithm::Ring.required_degree(p),
                tree_required_degree: Algorithm::DoubleBinaryTree.required_degree(p),
            });
        }
    }
    report.note("rings need only 2 circuits per GPU (photonic-rail friendly) and win for bandwidth-bound transfers;");
    report.note("latency-optimized trees win for small messages at large scale but need a node degree no OCS port budget provides (C1)");
    report.print();
    Report::write_json("ablation_collective_algorithms", &rows);
}
