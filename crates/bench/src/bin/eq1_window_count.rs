//! Eq. 1: the closed-form window-count estimate, evaluated for the Llama 3.1 405B
//! training recipe (the paper reports 127 windows per ~20 s iteration, i.e. about six
//! reconfiguration opportunities per second) and for the paper's own 3D testbed config.

use railsim_bench::Report;
use railsim_workload::windows::{llama31_405b_inputs, window_count, WindowCountInputs};

fn main() {
    let mut report = Report::new(
        "Eq. 1 — inter-parallelism windows per training iteration",
        &[
            "configuration",
            "PP",
            "layers",
            "microbatches",
            "CP/EP",
            "windows",
        ],
    );

    let configs = [
        ("Llama3.1-405B recipe [10,41]", llama31_405b_inputs()),
        (
            "Llama3-8B testbed (TP=4, FSDP=2, PP=2)",
            WindowCountInputs {
                pipeline: 2,
                num_layers: 32,
                num_microbatches: 2,
                has_cp_or_ep: false,
                has_cp_and_ep: false,
            },
        ),
        (
            "5D example (PP=4, CP&EP, 8 microbatches)",
            WindowCountInputs {
                pipeline: 4,
                num_layers: 64,
                num_microbatches: 8,
                has_cp_or_ep: true,
                has_cp_and_ep: true,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, inputs) in configs {
        let breakdown = window_count(&inputs);
        report.row(&[
            name.to_string(),
            inputs.pipeline.to_string(),
            inputs.num_layers.to_string(),
            inputs.num_microbatches.to_string(),
            format!("{}/{}", inputs.has_cp_or_ep, inputs.has_cp_and_ep),
            breakdown.total().to_string(),
        ]);
        rows.push((name, inputs, breakdown));
    }
    report.note("paper: 127 windows per Llama3.1-405B iteration (~6 windows/second at 1k H100s)");
    report.print();

    let detail = window_count(&llama31_405b_inputs());
    println!();
    println!(
        "Llama3.1-405B breakdown: PP&FSDP={}, CP/EP&FSDP={}, CP/EP&PP={}, CP&EP={}, transitions={}",
        detail.pp_fsdp, detail.cpep_fsdp, detail.cpep_pp, detail.cp_ep, detail.state_transitions
    );

    Report::write_json("eq1_window_count", &rows);
}
