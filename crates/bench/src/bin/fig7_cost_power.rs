//! Fig. 7: GPU-backend network cost and power for fat-tree, rail-optimized and Opus
//! fabrics at 1024–8192 GPUs (DGX H200, 400 G optics), plus the §6 headline savings.
//!
//! With `--simulate`, each figure size is also *synthesized and executed*: a DGX H200
//! cluster of that size runs one provisioned-optical training iteration on the
//! sharded event engine, demonstrating that the cost model's x-axis is a regime the
//! simulator actually covers (not just a spreadsheet row).

use opus::OpusSimulator;
use railsim_bench::{scale_run_config, scaled_cluster, scaled_dag, Report};
use railsim_cost::{FabricCost, FabricKind, GpuBackendCostModel};

fn simulated_iteration_table(sizes: &[u64]) {
    let mut report = Report::new(
        "Fig. 7 (companion) — simulated training iteration at each figure size",
        &[
            "# GPUs",
            "DAG tasks",
            "Iter time (s)",
            "Reconfigs",
            "Wall clock (s)",
        ],
    );
    for &n in sizes {
        let cluster = scaled_cluster(n as u32);
        let dag = scaled_dag(n as u32);
        let dag_tasks = dag.len();
        let wall = std::time::Instant::now();
        let mut sim = OpusSimulator::new(cluster, dag, scale_run_config(2));
        let result = sim.run();
        report.row(&[
            n.to_string(),
            dag_tasks.to_string(),
            format!("{:.3}", result.steady_state_iteration_time().as_secs_f64()),
            result.total_reconfigs().to_string(),
            format!("{:.2}", wall.elapsed().as_secs_f64()),
        ]);
    }
    report.note("provisioned optical, 25 ms OCS, TP=8 / PP=8 / FSDP, sharded event engine");
    report.print();
}

fn main() {
    let simulate = std::env::args().any(|a| a == "--simulate");
    let model = GpuBackendCostModel::dgx_h200_400g();
    let sizes = [1024u64, 2048, 4096, 8192];
    let rows: Vec<FabricCost> = model.sweep(&sizes);

    let mut cost_report = Report::new(
        "Fig. 7 (left) — GPU-backend network cost (USD)",
        &[
            "# GPUs",
            "Fat-tree",
            "Rail-optimized",
            "Opus",
            "Opus saving vs rail",
        ],
    );
    let mut power_report = Report::new(
        "Fig. 7 (right) — GPU-backend network power (W)",
        &[
            "# GPUs",
            "Fat-tree",
            "Rail-optimized",
            "Opus",
            "Opus saving vs rail",
        ],
    );
    for &n in &sizes {
        let get = |kind: FabricKind| -> &FabricCost {
            rows.iter()
                .find(|r| r.kind == kind && r.num_gpus == n)
                .expect("sweep covers every (kind, size) pair")
        };
        let ft = get(FabricKind::FatTree);
        let rail = get(FabricKind::RailOptimized);
        let opus = get(FabricKind::Opus);
        cost_report.row(&[
            n.to_string(),
            format!("{:.2}M", ft.capex_usd / 1e6),
            format!("{:.2}M", rail.capex_usd / 1e6),
            format!("{:.2}M", opus.capex_usd / 1e6),
            format!("{:.1}%", 100.0 * opus.capex_saving_vs(rail)),
        ]);
        power_report.row(&[
            n.to_string(),
            format!("{:.1}kW", ft.power_watts / 1e3),
            format!("{:.1}kW", rail.power_watts / 1e3),
            format!("{:.1}kW", opus.power_watts / 1e3),
            format!("{:.2}%", 100.0 * opus.power_saving_vs(rail)),
        ]);
    }
    cost_report.note("paper headline (§6): up to 70.5% cost saving vs the electrical rail fabric");
    power_report
        .note("paper headline (§6): up to 95.84% power saving vs the electrical rail fabric");
    cost_report.print();
    println!();
    power_report.print();
    if simulate {
        println!();
        simulated_iteration_table(&sizes);
    }

    Report::write_json("fig7_cost_power", &rows);
}
