//! Table 2: per-parallelism communication characteristics, instantiated for the
//! paper's Llama3-8B workload so every row carries a concrete per-collective volume.

use railsim_bench::{paper_model, paper_parallelism, Report};
use railsim_workload::traffic::{table2_rows, Frequency, Pass};

fn main() {
    let model = paper_model();
    let parallel = paper_parallelism();
    let rows = table2_rows(&model, &parallel);

    let mut report = Report::new(
        format!(
            "Table 2 — parallelism communication characteristics ({}, TP={}, DP={}, PP={})",
            model.name, parallel.tensor, parallel.data, parallel.pipeline
        ),
        &[
            "Strategy",
            "Memory reduction",
            "Collectives",
            "Pass",
            "Frequency",
            "Volume",
        ],
    );
    for row in &rows {
        let collectives = row
            .collectives
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" & ");
        let pass = match row.pass {
            Pass::Forward => "fwd",
            Pass::Backward => "bwd",
            Pass::Both => "fwd+bwd",
        };
        let freq = match row.frequency {
            Frequency::PerLayer => "per layer",
            Frequency::PerOperator => "per operator",
            Frequency::PerMicrobatch => "per microbatch",
            Frequency::PerModel => "per model",
        };
        report.row(&[
            row.strategy.to_string(),
            row.memory_reduction.to_string(),
            collectives,
            pass.to_string(),
            freq.to_string(),
            row.volume.to_string(),
        ]);
    }
    report.print();
    Report::write_json("table2_parallelism_traffic", &rows);
}
