//! Fig. 2: the collective sequence of one 3D-parallel training iteration.
//!
//! Prints a summary of the execution DAG (task counts per traffic class) and the
//! ordered sequence of communication operations rank 0 and its pipeline peer issue,
//! which is the structure Fig. 2 draws.

use railsim_bench::{paper_dag, Report};
use railsim_topology::GpuId;
use railsim_workload::TaskKind;

fn main() {
    let dag = paper_dag();

    let mut summary = Report::new(
        "Fig. 2 — execution DAG of one 3D-parallel training iteration",
        &["Metric", "Value"],
    );
    summary.row(&["total tasks".into(), dag.len().to_string()]);
    summary.row(&[
        "compute tasks".into(),
        dag.compute_tasks().count().to_string(),
    ]);
    summary.row(&[
        "communication tasks".into(),
        dag.communication_tasks().count().to_string(),
    ]);
    summary.row(&["communication groups".into(), dag.groups.len().to_string()]);
    summary.row(&[
        "total traffic".into(),
        dag.total_communication_bytes().to_string(),
    ]);
    for prefix in ["FSDP-AG", "FSDP-RS", "TP-", "PP-fwd", "PP-bwd", "sync-AR"] {
        let count = dag
            .tasks
            .iter()
            .filter(|t| t.label_str().starts_with(prefix))
            .count();
        summary.row(&[format!("{prefix}* tasks"), count.to_string()]);
    }
    summary.print();
    println!();

    // The per-rank communication sequence Fig. 2 illustrates (rank 0 = stage 0, its
    // pipeline peer = stage 1), truncated for readability.
    for rank in [GpuId(0), GpuId(8)] {
        let mut seq = Report::new(
            format!("communication sequence of {rank} (first 20 operations)"),
            &["#", "operation", "axis", "bytes"],
        );
        let comms: Vec<_> = dag
            .tasks_of_rank(rank)
            .into_iter()
            .filter(|t| t.kind.is_communication())
            .take(20)
            .collect();
        for (i, task) in comms.iter().enumerate() {
            let (axis, bytes) = match &task.kind {
                TaskKind::Collective { axis, bytes, .. } => (axis.to_string(), bytes.to_string()),
                TaskKind::PointToPoint { axis, bytes, .. } => (axis.to_string(), bytes.to_string()),
                TaskKind::Compute { .. } => unreachable!("filtered to communication tasks"),
            };
            seq.row(&[i.to_string(), task.label.to_string(), axis, bytes]);
        }
        seq.print();
        println!();
    }
}
