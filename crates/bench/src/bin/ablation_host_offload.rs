//! Ablation for the paper's §5 discussion: offloading small, bursty collectives (the
//! optimizer-phase sync AllReduces) to the host packet-switched network instead of
//! reconfiguring the optical rails for them. Sweeps the reconfiguration latency and
//! compares provisioned photonic rails with and without host offload.

use opus::{HostOffload, OpusConfig, OpusSimulator};
use railsim_bench::{paper_cluster, paper_dag, Report};
use railsim_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct OffloadRow {
    latency_ms: f64,
    normalized_provisioned: f64,
    normalized_provisioned_with_offload: f64,
    reconfigs_plain: usize,
    reconfigs_offload: usize,
}

fn main() {
    const ITERATIONS: u32 = 3;
    fn run_config(mut base: OpusConfig) -> OpusConfig {
        base.iterations = ITERATIONS;
        base.compute_jitter = 0.0;
        base.seed = 13;
        base
    }
    let cluster = paper_cluster();
    let dag = paper_dag();
    let baseline = OpusSimulator::new(
        cluster.clone(),
        dag.clone(),
        run_config(OpusConfig::electrical()),
    )
    .run();
    let base = baseline.steady_state_iteration_time().as_secs_f64();

    let mut report = Report::new(
        "Ablation (§5) — offloading sub-MB collectives to the host network",
        &[
            "latency (ms)",
            "provisioned",
            "provisioned + offload",
            "reconfigs/iter (plain/offload)",
        ],
    );
    let mut rows = Vec::new();
    for latency_ms in [1.0f64, 15.0, 25.0, 100.0, 500.0] {
        let latency = SimDuration::from_millis_f64(latency_ms);
        let plain = OpusSimulator::new(
            cluster.clone(),
            dag.clone(),
            run_config(OpusConfig::provisioned(latency)),
        )
        .run();
        let offload = OpusSimulator::new(cluster.clone(), dag.clone(), {
            let mut cfg = run_config(OpusConfig::provisioned(latency));
            cfg.host_offload = Some(HostOffload::frontend_100g());
            cfg
        })
        .run();
        let n_plain = plain.steady_state_iteration_time().as_secs_f64() / base;
        let n_off = offload.steady_state_iteration_time().as_secs_f64() / base;
        let r_plain = plain
            .iterations
            .last()
            .map(|i| i.reconfig_count())
            .unwrap_or(0);
        let r_off = offload
            .iterations
            .last()
            .map(|i| i.reconfig_count())
            .unwrap_or(0);
        report.row(&[
            format!("{latency_ms}"),
            format!("{n_plain:.3}"),
            format!("{n_off:.3}"),
            format!("{r_plain} / {r_off}"),
        ]);
        rows.push(OffloadRow {
            latency_ms,
            normalized_provisioned: n_plain,
            normalized_provisioned_with_offload: n_off,
            reconfigs_plain: r_plain,
            reconfigs_offload: r_off,
        });
    }
    report.note("offload target: 100 Gbps host network, 50 us step latency, 1 MB threshold");
    report.note("paper §5: small, high-incast traffic 'could also be off-loaded to the host-based packet switched network'");
    report.print();
    Report::write_json("ablation_host_offload", &rows);
}
