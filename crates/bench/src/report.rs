//! Plain-text tables and JSON result files.
//!
//! Each experiment binary prints the same rows/series the paper reports and, when a
//! `results/` directory exists (it is created on demand), also writes the rows as JSON
//! so EXPERIMENTS.md numbers can be regenerated mechanically.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned text table plus a machine-readable payload.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header count"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a free-text note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the report as a column-aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes `payload` as pretty JSON into `results/<name>.json` (relative to the
    /// workspace root, falling back to the current directory). Errors are reported but
    /// non-fatal so the binaries still work in read-only checkouts.
    pub fn write_json<T: Serialize>(name: &str, payload: &T) {
        let dir = results_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(payload) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    println!("(wrote {})", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
        }
    }
}

/// The directory experiment results are written to: `<workspace root>/results` when it
/// can be located via `CARGO_MANIFEST_DIR`, otherwise `./results`.
pub fn results_dir() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_default();
    if manifest.is_empty() {
        return PathBuf::from("results");
    }
    // crates/bench -> workspace root is two levels up.
    Path::new(&manifest)
        .ancestors()
        .nth(2)
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("demo", &["name", "value"]);
        r.row(&["a".into(), "1".into()]);
        r.row(&["longer-name".into(), "2".into()]);
        r.note("hello");
        let text = r.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("longer-name"));
        assert!(text.contains("note: hello"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut r = Report::new("demo", &["a", "b"]);
        r.row(&["only-one".into()]);
    }

    #[test]
    fn results_dir_is_under_workspace_root() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }
}
