//! Canonical experiment setups shared by the binaries and the criterion benches.

use railsim_topology::{Cluster, ClusterSpec, NodePreset};
use railsim_workload::{
    ComputeModel, DagBuilder, GpuSpec, ModelConfig, ParallelismConfig, TrainingDag,
};

/// The paper's §3.1 testbed: 4 Perlmutter GPU nodes (4× A100, NVLink 3.0, Slingshot-11).
pub fn paper_cluster() -> Cluster {
    ClusterSpec::from_preset(NodePreset::PerlmutterA100, 4).build()
}

/// The paper's workload model: Llama 3 8B.
pub fn paper_model() -> ModelConfig {
    ModelConfig::llama3_8b()
}

/// The paper's parallelism configuration: TP=4 (intra-node), FSDP=2, PP=2,
/// micro-batch size 2, 1F1B schedule.
pub fn paper_parallelism() -> ParallelismConfig {
    ParallelismConfig::paper_llama3_8b()
}

/// The compute model for the paper's workload on A100 GPUs.
pub fn paper_compute() -> ComputeModel {
    ComputeModel::derive(&paper_model(), &paper_parallelism(), &GpuSpec::a100())
}

/// The execution DAG of one training iteration of the paper's workload.
pub fn paper_dag() -> TrainingDag {
    DagBuilder::new(paper_model(), paper_parallelism(), paper_compute()).build()
}

/// A larger-global-batch variant of the paper workload (8 micro-batches instead of 2).
/// The authors' measured iteration on Perlmutter is several seconds long (their Fig. 4
/// reports windows up to a second); our roofline compute model underestimates the
/// per-iteration work of the 2-micro-batch configuration, so Fig. 8 style sweeps use
/// this variant to keep the ratio of reconfiguration delay to iteration time in the
/// regime the paper studies. See EXPERIMENTS.md for the calibration note.
pub fn paper_dag_large_batch() -> TrainingDag {
    let mut parallel = paper_parallelism();
    parallel.num_microbatches = 8;
    let compute = ComputeModel::derive(&paper_model(), &parallel, &GpuSpec::a100());
    DagBuilder::new(paper_model(), parallel, compute).build()
}

/// The reconfiguration latencies (in milliseconds) swept by Fig. 8.
pub fn fig8_latencies_ms() -> Vec<f64> {
    vec![0.1, 1.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_is_consistent() {
        let cluster = paper_cluster();
        let parallel = paper_parallelism();
        assert_eq!(cluster.num_gpus(), parallel.world_size());
        assert_eq!(cluster.num_rails(), 4);
        let dag = paper_dag();
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn large_batch_variant_has_more_microbatches() {
        let base = paper_dag();
        let large = paper_dag_large_batch();
        assert!(large.len() > base.len());
    }

    #[test]
    fn fig8_sweep_matches_the_paper_x_axis() {
        let xs = fig8_latencies_ms();
        assert_eq!(xs.len(), 10);
        assert_eq!(xs[0], 0.1);
        assert_eq!(*xs.last().unwrap(), 1000.0);
    }
}
