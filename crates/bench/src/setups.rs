//! Canonical experiment setups shared by the binaries and the criterion benches.

use opus::OpusConfig;
use railsim_sim::SimDuration;
use railsim_topology::{Cluster, ClusterSpec, NodePreset};
use railsim_workload::{
    ComputeModel, DagBuilder, DataParallelKind, GpuSpec, ModelConfig, ParallelismConfig,
    TrainingDag,
};

/// The paper's §3.1 testbed: 4 Perlmutter GPU nodes (4× A100, NVLink 3.0, Slingshot-11).
pub fn paper_cluster() -> Cluster {
    ClusterSpec::from_preset(NodePreset::PerlmutterA100, 4).build()
}

/// The paper's workload model: Llama 3 8B.
pub fn paper_model() -> ModelConfig {
    ModelConfig::llama3_8b()
}

/// The paper's parallelism configuration: TP=4 (intra-node), FSDP=2, PP=2,
/// micro-batch size 2, 1F1B schedule.
pub fn paper_parallelism() -> ParallelismConfig {
    ParallelismConfig::paper_llama3_8b()
}

/// The compute model for the paper's workload on A100 GPUs.
pub fn paper_compute() -> ComputeModel {
    ComputeModel::derive(&paper_model(), &paper_parallelism(), &GpuSpec::a100())
}

/// The execution DAG of one training iteration of the paper's workload.
pub fn paper_dag() -> TrainingDag {
    DagBuilder::new(paper_model(), paper_parallelism(), paper_compute()).build()
}

/// A larger-global-batch variant of the paper workload (8 micro-batches instead of 2).
/// The authors' measured iteration on Perlmutter is several seconds long (their Fig. 4
/// reports windows up to a second); our roofline compute model underestimates the
/// per-iteration work of the 2-micro-batch configuration, so Fig. 8 style sweeps use
/// this variant to keep the ratio of reconfiguration delay to iteration time in the
/// regime the paper studies. See EXPERIMENTS.md for the calibration note.
pub fn paper_dag_large_batch() -> TrainingDag {
    let mut parallel = paper_parallelism();
    parallel.num_microbatches = 8;
    let compute = ComputeModel::derive(&paper_model(), &parallel, &GpuSpec::a100());
    DagBuilder::new(paper_model(), parallel, compute).build()
}

/// The reconfiguration latencies (in milliseconds) swept by Fig. 8.
pub fn fig8_latencies_ms() -> Vec<f64> {
    vec![0.1, 1.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0]
}

/// The GPU counts of the datacenter-scale Table 3 / Fig. 7 runs.
pub fn scale_gpu_counts() -> Vec<u32> {
    vec![1024, 4096, 10240, SCALE_100K_GPUS]
}

/// The 100k-GPU ceiling: 12800 DGX H200 nodes (TP=8 × PP=8 × FSDP=1600). The
/// interned-DAG + dense-controller memory budget and the parallel-stepping
/// methodology for this point are documented in EXPERIMENTS.md.
pub const SCALE_100K_GPUS: u32 = 102_400;

/// A datacenter-scale cluster with `spare_nodes` extra DGX H200 nodes beyond the
/// job's world size — headroom for shifted placement cells (a fleet sweep placing
/// the same job at a non-zero GPU offset) and for co-located serving tenants.
pub fn scaled_cluster_with_spare(num_gpus: u32, spare_nodes: u32) -> Cluster {
    assert!(
        num_gpus > 0 && num_gpus.is_multiple_of(64),
        "scaled setups need a positive multiple of 64 GPUs (8 per node x PP=8), got {num_gpus}"
    );
    ClusterSpec::from_preset(NodePreset::DgxH200, num_gpus / 8 + spare_nodes).build()
}

/// The 100k-GPU cluster preset (see [`SCALE_100K_GPUS`]).
pub fn scaled_cluster_100k() -> Cluster {
    scaled_cluster(SCALE_100K_GPUS)
}

/// A datacenter-scale cluster of DGX H200 nodes (8 GPUs, 8 rails, ConnectX-7 400 G).
///
/// # Panics
/// Panics unless `num_gpus` is a positive multiple of 64 (see [`scaled_parallelism`]).
pub fn scaled_cluster(num_gpus: u32) -> Cluster {
    assert!(
        num_gpus > 0 && num_gpus.is_multiple_of(64),
        "scaled setups need a positive multiple of 64 GPUs (8 per node x PP=8), got {num_gpus}"
    );
    ClusterSpec::from_preset(NodePreset::DgxH200, num_gpus / 8).build()
}

/// The parallelism configuration of the datacenter-scale runs: TP=8 inside the
/// scale-up domain (matching the DGX H200 node), PP=8 across nodes, and FSDP over the
/// remaining factor — the TP×PP×DP recipe Table 1 prescribes for large models beyond
/// 1024 GPUs. 8 micro-batches keep the 1F1B pipeline full.
pub fn scaled_parallelism(num_gpus: u32) -> ParallelismConfig {
    assert!(
        num_gpus > 0 && num_gpus.is_multiple_of(64),
        "TP=8 x PP=8 needs a positive multiple of 64 GPUs, got {num_gpus}"
    );
    ParallelismConfig {
        tensor: 8,
        sequence_parallel: true,
        context: 1,
        expert: 1,
        data: num_gpus / 64,
        data_kind: DataParallelKind::FullySharded,
        pipeline: 8,
        num_microbatches: 8,
        microbatch_size: 1,
        seq_len: 8192,
    }
}

/// The canonical simulation configuration of the datacenter-scale runs, shared by
/// `table3_scalability` and `fig7_cost_power --simulate` so the two binaries always
/// report the same regime: provisioned optical with a 25 ms piezo-class OCS, jitter
/// disabled for run-to-run comparability. (The electrical baseline is
/// `opus::baseline_of` applied to this.)
pub fn scale_run_config(iterations: u32) -> OpusConfig {
    let mut config = OpusConfig::provisioned(SimDuration::from_millis(25));
    config.iterations = iterations;
    config.compute_jitter = 0.0;
    config.seed = 1;
    config
}

/// The execution DAG of one training iteration at datacenter scale (Llama 3 8B under
/// [`scaled_parallelism`], compute modeled on the H200 of the [`scaled_cluster`]
/// nodes). At 10240 GPUs this is on the order of a million tasks — the regime the
/// arena-backed DAG and the sharded event engine exist for.
pub fn scaled_dag(num_gpus: u32) -> TrainingDag {
    let parallel = scaled_parallelism(num_gpus);
    let compute = ComputeModel::derive(&paper_model(), &parallel, &GpuSpec::h200());
    DagBuilder::new(paper_model(), parallel, compute).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_is_consistent() {
        let cluster = paper_cluster();
        let parallel = paper_parallelism();
        assert_eq!(cluster.num_gpus(), parallel.world_size());
        assert_eq!(cluster.num_rails(), 4);
        let dag = paper_dag();
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn large_batch_variant_has_more_microbatches() {
        let base = paper_dag();
        let large = paper_dag_large_batch();
        assert!(large.len() > base.len());
    }

    #[test]
    fn scaled_setup_is_consistent_at_small_scale() {
        // 128 GPUs keeps the debug-build test quick; the 1k-10k sizes run in the
        // release-mode CI smoke step and the table3_scalability binary.
        let cluster = scaled_cluster(128);
        let parallel = scaled_parallelism(128);
        assert_eq!(cluster.num_gpus(), 128);
        assert_eq!(cluster.num_rails(), 8);
        assert_eq!(parallel.world_size(), 128);
        assert!(parallel.validate(128).is_ok());
        let dag = scaled_dag(128);
        assert!(dag.validate().is_ok());
        assert!(
            dag.len() > 128,
            "a 128-GPU iteration has thousands of tasks"
        );
    }

    #[test]
    fn scale_gpu_counts_cover_the_table3_regime() {
        let counts = scale_gpu_counts();
        assert_eq!(counts, vec![1024, 4096, 10240, 102400]);
        for n in counts {
            // Every advertised size must be constructible.
            let p = scaled_parallelism(n);
            assert!(p.validate(n).is_ok());
        }
    }

    #[test]
    fn the_100k_preset_is_well_formed() {
        // Validate the configuration without building the ~9M-task DAG (that runs in
        // release mode via `table3_scalability --gpus 102400`; see EXPERIMENTS.md).
        let cluster = scaled_cluster_100k();
        assert_eq!(cluster.num_gpus(), SCALE_100K_GPUS);
        assert_eq!(cluster.num_rails(), 8);
        let p = scaled_parallelism(SCALE_100K_GPUS);
        assert_eq!(p.data, 1600);
        assert!(p.validate(SCALE_100K_GPUS).is_ok());
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn scaled_setup_rejects_unaligned_sizes() {
        let _ = scaled_parallelism(100);
    }

    #[test]
    fn fig8_sweep_matches_the_paper_x_axis() {
        let xs = fig8_latencies_ms();
        assert_eq!(xs.len(), 10);
        assert_eq!(xs[0], 0.1);
        assert_eq!(*xs.last().unwrap(), 1000.0);
    }
}
