//! Micro-benchmark: evaluating the α–β collective cost model across algorithms and
//! group sizes (the inner loop of every communication-task resolution).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use railsim_collectives::{
    cost::{collective_time, CostParams},
    Algorithm, CollectiveKind,
};
use railsim_sim::{Bandwidth, Bytes, SimDuration};

fn bench_collective_cost(c: &mut Criterion) {
    let params = CostParams::new(SimDuration::from_micros(10), Bandwidth::from_gbps(400.0));
    c.bench_function("collective_cost_all_kinds_all_algorithms", |b| {
        b.iter(|| {
            let mut acc = SimDuration::ZERO;
            for kind in [
                CollectiveKind::AllReduce,
                CollectiveKind::AllGather,
                CollectiveKind::ReduceScatter,
                CollectiveKind::AllToAll,
            ] {
                for algo in [
                    Algorithm::Ring,
                    Algorithm::DoubleBinaryTree,
                    Algorithm::HalvingDoubling,
                    Algorithm::Direct,
                ] {
                    for p in [2usize, 8, 64, 512] {
                        acc = acc.saturating_add(collective_time(
                            kind,
                            algo,
                            p,
                            black_box(Bytes::from_mb(256)),
                            &params,
                        ));
                    }
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_collective_cost);
criterion_main!(benches);
