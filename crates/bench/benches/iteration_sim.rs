//! Macro-benchmark: one full training-iteration simulation under each network policy
//! (the engine behind Fig. 8).

#![allow(deprecated)] // the `with_*` chains here migrate to field style over time

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opus::{OpusConfig, OpusSimulator};
use railsim_bench::{paper_cluster, paper_dag};
use railsim_sim::SimDuration;

fn bench_iteration_sim(c: &mut Criterion) {
    let cluster = paper_cluster();
    let dag = paper_dag();

    let mut group = c.benchmark_group("iteration_simulation");
    group.sample_size(20);
    group.bench_function("electrical_baseline", |b| {
        b.iter(|| {
            let mut sim = OpusSimulator::new(
                cluster.clone(),
                dag.clone(),
                OpusConfig::electrical().with_iterations(1),
            );
            black_box(sim.run().steady_state_iteration_time())
        })
    });
    group.bench_function("optical_provisioned_25ms_2iters", |b| {
        b.iter(|| {
            let mut sim = OpusSimulator::new(
                cluster.clone(),
                dag.clone(),
                OpusConfig::provisioned(SimDuration::from_millis(25)).with_iterations(2),
            );
            black_box(sim.run().steady_state_iteration_time())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_iteration_sim);
criterion_main!(benches);
