//! Micro-benchmark: OCS circuit install churn — the matching-engine hot path of the
//! optical policy at datacenter scale.
//!
//! Alternates between a DP ring (every GPU of rail 0, 128 nodes) and a PP ring (every
//! 16th node on the same rail) on one rail of a 1024-GPU DGX H200 cluster. The two
//! configurations share every PP member's single NIC port, so each alternation tears
//! conflicting circuits down and sets the other ring up — exactly the
//! reconfiguration churn `table3_scalability`'s optical policy generates, isolated
//! from the event engine. The port-indexed matching keeps one alternation
//! O(affected ports) regardless of how many circuits the rail holds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opus::CircuitPlanner;
use railsim_bench::scaled_cluster;
use railsim_collectives::{CommGroup, GroupId, ParallelismAxis};
use railsim_sim::{SimDuration, SimTime};
use railsim_topology::{OpticalRailFabric, RailId};

fn bench_ocs_install_churn(c: &mut Criterion) {
    let cluster = scaled_cluster(1024);
    let planner = CircuitPlanner::for_cluster(&cluster);
    let rail = RailId(0);
    let rail_gpus = cluster.gpus_in_rail(rail);
    let dp = CommGroup::new(GroupId(0), ParallelismAxis::Data, rail_gpus.clone());
    let pp = CommGroup::new(
        GroupId(1),
        ParallelismAxis::Pipeline,
        rail_gpus.iter().copied().step_by(16).collect(),
    );
    let dp_circuits = &planner.plan(&cluster, &dp).per_rail[&rail];
    let pp_circuits = &planner.plan(&cluster, &pp).per_rail[&rail];

    let mut fabric = OpticalRailFabric::for_cluster(&cluster, SimDuration::from_millis(25));
    let mut now = SimTime::ZERO;
    c.bench_function("ocs_install_churn_rail0", |b| {
        b.iter(|| {
            // One full churn cycle: DP ring in, PP ring displaces its shared ports,
            // next iteration's DP install rebuilds them.
            now = fabric
                .install(rail, black_box(dp_circuits), now)
                .expect("radix covers the full rail");
            now = fabric
                .install(rail, black_box(pp_circuits), now)
                .expect("radix covers the full rail");
            black_box(now)
        })
    });
    black_box(fabric.ocs(rail).circuits_set_up());
}

criterion_group!(benches, bench_ocs_install_churn);
criterion_main!(benches);
