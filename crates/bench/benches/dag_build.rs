//! Micro-benchmark: building the Llama3-8B 3D-parallel training DAG (the workload
//! generator behind Fig. 2/3/4/8).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use railsim_bench::{paper_compute, paper_model, paper_parallelism};
use railsim_workload::DagBuilder;

fn bench_dag_build(c: &mut Criterion) {
    c.bench_function("dag_build_llama3_8b_3d", |b| {
        b.iter(|| {
            let dag = DagBuilder::new(paper_model(), paper_parallelism(), paper_compute()).build();
            black_box(dag.len())
        })
    });

    c.bench_function("dag_topological_sort_llama3_8b_3d", |b| {
        let dag = DagBuilder::new(paper_model(), paper_parallelism(), paper_compute()).build();
        b.iter(|| black_box(dag.topological_order().expect("acyclic").len()))
    });
}

criterion_group!(benches, bench_dag_build);
criterion_main!(benches);
