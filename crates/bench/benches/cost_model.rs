//! Micro-benchmark: the Fig. 7 fabric cost/power sweep and fat-tree sizing arithmetic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use railsim_cost::GpuBackendCostModel;
use railsim_topology::fattree::ClosDimensions;

fn bench_cost_model(c: &mut Criterion) {
    c.bench_function("fig7_cost_power_sweep", |b| {
        let model = GpuBackendCostModel::dgx_h200_400g();
        b.iter(|| black_box(model.sweep(&[1024, 2048, 4096, 8192, 16384, 32768]).len()))
    });

    c.bench_function("clos_sizing_1_to_64k_endpoints", |b| {
        b.iter(|| {
            let mut switches = 0u64;
            let mut n = 64u64;
            while n <= 65536 {
                switches += ClosDimensions::size(black_box(n), 64).total_switches();
                n *= 2;
            }
            black_box(switches)
        })
    });
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
