//! Macro-benchmark of the rail-sharded commit phase: the same multi-rail churn
//! workload driven once with the sequential commit path (`commit_threads` unset) and
//! once with four commit workers, so `BENCH_scale.json` tracks both sides of the
//! trade. A 256-GPU DGX H200 slice (8 rails) under the datacenter-scale optical
//! config with a rail-flap pulse mid-run gives the commit phase per-rail work worth
//! sharding — large same-timestamp batches of pure per-rail effects — while staying
//! small enough for the bench budget.
//!
//! On a single-core box the sharded side pays scoped-thread overhead without any
//! parallel speedup, so it benches *slower* than sequential there; the number is
//! still worth tracking (it bounds the overhead), and the byte-identity contract is
//! asserted in the setup before either side is timed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opus::{Scenario, ScenarioEvent};
use railsim_bench::{scale_run_config, scaled_cluster, scaled_dag};
use railsim_sim::SimTime;
use railsim_topology::RailId;

const GPUS: u32 = 256;

fn bench_commit_parallel(c: &mut Criterion) {
    let cluster = scaled_cluster(GPUS);
    let dag = scaled_dag(GPUS);
    let sequential = scale_run_config(2);
    let mut sharded = sequential;
    sharded.commit_threads = Some(4);

    let run = |config| {
        Scenario::new(cluster.clone())
            .job(dag.clone(), config)
            .inject(SimTime::from_millis(50), ScenarioEvent::RailDown(RailId(2)))
            .inject(SimTime::from_millis(120), ScenarioEvent::RailUp(RailId(2)))
            .run()
    };

    // The whole point of the sharded path is that it changes nothing observable.
    assert_eq!(
        run(sequential).fleet.makespan,
        run(sharded).fleet.makespan,
        "sharded commit must be indistinguishable from sequential"
    );

    let mut group = c.benchmark_group("commit_parallel");
    group.sample_size(10);
    group.bench_function("commit_sequential_256", |b| {
        b.iter(|| black_box(run(sequential).fleet.makespan))
    });
    group.bench_function("commit_sharded_4thr_256", |b| {
        b.iter(|| black_box(run(sharded).fleet.makespan))
    });
    group.finish();
}

criterion_group!(benches, bench_commit_parallel);
criterion_main!(benches);
