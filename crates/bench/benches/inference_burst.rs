//! Macro-benchmark of the serving datapath: a mixed training + inference scenario
//! with open-loop request bursts and an elastic grow/shrink pulse, end to end.
//! Tracks the serving loop (backlog-driven iterations, replica masking) and the
//! tenant-eviction claim path on top of the scenario overhead that `scenario_step`
//! gates — `never` runs the tenancy-off datapath, `fair_share` the full eviction
//! machinery on conflicting circuits.

#![allow(deprecated)] // the `with_*` chains here migrate to field style over time

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opus::{EvictionPolicy, JobPlacement, OpusConfig, Scenario, ScenarioEvent, ServingSpec};
use railsim_bench::{paper_compute, paper_model, paper_parallelism};
use railsim_sim::{SimDuration, SimTime};
use railsim_topology::{ClusterSpec, NodePreset};
use railsim_workload::{
    DagBuilder, GpuSpec, InferenceConfig, InferenceDagBuilder, JobId, TrainingDag,
};

/// The committed contention scenario: a 16-rank trainer packed at GPU 0 and a
/// 2-replica serving tenant one node over, so the tenants' circuits conflict on
/// rails 0-3 (see EXPERIMENTS.md, "Inference serving semantics").
fn run_mixed(train_dag: &TrainingDag, eviction: EvictionPolicy) -> SimTime {
    let cluster = ClusterSpec::from_preset(NodePreset::PerlmutterA100, 5).build();
    let mut config = OpusConfig::on_demand(SimDuration::from_millis(25))
        .with_iterations(3)
        .with_jitter(0.0, 1);
    config.eviction = eviction;
    let inference = InferenceConfig::tiny_test(4, 2, 2);
    let serving = ServingSpec::for_inference(&inference, 1);
    let serve_dag = InferenceDagBuilder::new(inference, GpuSpec::a100()).build();
    let result = Scenario::new(cluster)
        .job(train_dag.clone(), config)
        .serving_job(serve_dag, config, JobPlacement::AtGpu(4), serving)
        .inject(
            SimTime::from_millis(1),
            ScenarioEvent::RequestBurst {
                job: JobId(1),
                requests: 8,
            },
        )
        .inject(
            SimTime::from_millis(20),
            ScenarioEvent::JobGrow { job: JobId(1) },
        )
        .inject(
            SimTime::from_millis(25),
            ScenarioEvent::RequestBurst {
                job: JobId(1),
                requests: 12,
            },
        )
        .inject(
            SimTime::from_millis(60),
            ScenarioEvent::JobShrink { job: JobId(1) },
        )
        .inject(
            SimTime::from_millis(70),
            ScenarioEvent::RequestBurst {
                job: JobId(1),
                requests: 6,
            },
        )
        .run();
    result.fleet.makespan
}

fn bench_inference_burst(c: &mut Criterion) {
    let train_dag = DagBuilder::new(paper_model(), paper_parallelism(), paper_compute()).build();

    let mut group = c.benchmark_group("inference_burst");
    group.sample_size(20);
    group.bench_function("never", |b| {
        b.iter(|| black_box(run_mixed(&train_dag, EvictionPolicy::Never)))
    });
    group.bench_function("fair_share", |b| {
        b.iter(|| black_box(run_mixed(&train_dag, EvictionPolicy::FairShare)))
    });
    group.finish();
}

criterion_group!(benches, bench_inference_burst);
criterion_main!(benches);
