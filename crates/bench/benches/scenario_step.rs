//! Macro-benchmark of the scenario driver: a two-job shared-rail scenario with a
//! rail-flap pulse, end to end. Tracks the redesigned entry point's overhead — the
//! per-job context multiplexing, the injected-event class and the fleet counters —
//! on top of the raw single-job hot path that `iteration_sim` gates.

#![allow(deprecated)] // the `with_*` chains here migrate to field style over time

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opus::{OpusConfig, Scenario, ScenarioEvent};
use railsim_bench::{paper_cluster, paper_dag};
use railsim_sim::{SimDuration, SimTime};
use railsim_topology::{ClusterSpec, NodePreset, RailId};

fn bench_scenario_step(c: &mut Criterion) {
    let single_cluster = paper_cluster();
    let two_job_cluster = ClusterSpec::from_preset(NodePreset::PerlmutterA100, 8).build();
    let dag = paper_dag();
    let config = OpusConfig::provisioned(SimDuration::from_millis(25))
        .with_iterations(2)
        .with_jitter(0.0, 7);

    let mut group = c.benchmark_group("scenario_step");
    group.sample_size(20);
    // Baseline shape: the wrapper-equivalent single job through the scenario API.
    group.bench_function("single_job_clean", |b| {
        b.iter(|| {
            let result = Scenario::new(single_cluster.clone())
                .job(dag.clone(), config)
                .run();
            black_box(result.fleet.makespan)
        })
    });
    // The scenario-only machinery: two jobs on shared rails plus a rail-flap pulse.
    group.bench_function("two_job_rail_flap", |b| {
        b.iter(|| {
            let result = Scenario::new(two_job_cluster.clone())
                .job(dag.clone(), config)
                .job(dag.clone(), config)
                .inject(
                    SimTime::from_millis(200),
                    ScenarioEvent::RailDown(RailId(0)),
                )
                .inject(SimTime::from_millis(400), ScenarioEvent::RailUp(RailId(0)))
                .run();
            black_box(result.fleet.makespan)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scenario_step);
criterion_main!(benches);
