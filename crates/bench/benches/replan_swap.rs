//! Micro-benchmark: the failure-aware replan hot path — degraded-schedule recompute
//! plus the circuit swap it triggers.
//!
//! A DP ring occupies every GPU of rail 0 on a 1024-GPU DGX H200 cluster; the rail
//! then fails. `replan_swap_recompute` isolates `CircuitPlanner::replan_degraded`:
//! re-striping the dead rail's circuits onto the surviving rails (round-robin
//! assignment + per-GPU port watermarks). `replan_swap_install` adds the fabric-side
//! cost of actually swapping: installing the degraded plan on the surviving rails and
//! tearing it back down (the `RailUp` swap-back), so one iteration is one full
//! degrade/restore cycle — the work `RecoveryPolicy::Replan` pays per health
//! transition, isolated from the event engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opus::CircuitPlanner;
use railsim_bench::scaled_cluster;
use railsim_collectives::{CommGroup, GroupId, ParallelismAxis};
use railsim_sim::{SimDuration, SimTime};
use railsim_topology::{OpticalRailFabric, RailId};

fn bench_replan_swap(c: &mut Criterion) {
    let cluster = scaled_cluster(1024);
    let planner = CircuitPlanner::for_cluster(&cluster);
    let failed = RailId(0);
    let dp = CommGroup::new(
        GroupId(0),
        ParallelismAxis::Data,
        cluster.gpus_in_rail(failed),
    );
    let pristine = planner.plan(&cluster, &dp);
    assert!(pristine.per_rail.contains_key(&failed));
    let healthy: Vec<RailId> = (1..cluster.num_rails()).map(RailId).collect();

    c.bench_function("replan_swap_recompute", |b| {
        b.iter(|| {
            let degraded = planner.replan_degraded(&cluster, black_box(&pristine), healthy.clone());
            assert!(!degraded.is_scaleup_only());
            black_box(degraded)
        })
    });

    let mut fabric = OpticalRailFabric::for_cluster(&cluster, SimDuration::from_millis(25));
    let mut now = SimTime::ZERO;
    c.bench_function("replan_swap_install", |b| {
        b.iter(|| {
            let degraded = planner.replan_degraded(&cluster, black_box(&pristine), healthy.clone());
            // Degrade: the replanned circuits land on the surviving rails.
            for (&rail, config) in &degraded.per_rail {
                now = fabric
                    .install(rail, config, now)
                    .expect("radix covers the displaced ring");
            }
            // Restore (RailUp): withdraw the degraded plan again.
            for (&rail, config) in &degraded.per_rail {
                black_box(fabric.ocs_mut(rail).tear_down(config));
            }
            black_box(now)
        })
    });
}

criterion_group!(benches, bench_replan_swap);
criterion_main!(benches);
