//! Micro-benchmark: Opus controller request handling (circuit lookup, conflict check,
//! OCS programming) — the per-collective control-plane overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opus::{CircuitPlanner, OpusController};
use railsim_bench::paper_cluster;
use railsim_collectives::{CommGroup, GroupId, ParallelismAxis};
use railsim_sim::{SimDuration, SimTime};
use railsim_topology::{GpuId, OpticalRailFabric};

fn bench_controller(c: &mut Criterion) {
    let cluster = paper_cluster();
    let planner = CircuitPlanner::for_cluster(&cluster);
    // Two groups sharing GPU 0's port force a tear-down/set-up on every alternation.
    let dp = CommGroup::new(GroupId(0), ParallelismAxis::Data, vec![GpuId(0), GpuId(4)]);
    let pp = CommGroup::new(
        GroupId(1),
        ParallelismAxis::Pipeline,
        vec![GpuId(0), GpuId(8)],
    );
    let dp_circuits = planner.plan(&cluster, &dp);
    let pp_circuits = planner.plan(&cluster, &pp);

    c.bench_function("controller_alternating_requests_1k", |b| {
        b.iter(|| {
            let fabric = OpticalRailFabric::for_cluster(&cluster, SimDuration::from_millis(25));
            let mut controller = OpusController::new(fabric);
            let mut now = SimTime::ZERO;
            for i in 0..1000u64 {
                let (group, circuits) = if i % 2 == 0 {
                    (dp.id, &dp_circuits)
                } else {
                    (pp.id, &pp_circuits)
                };
                let ready = controller.request(group, circuits, now);
                controller.occupy(circuits, ready + SimDuration::from_millis(1));
                now = ready + SimDuration::from_millis(1);
            }
            black_box(controller.total_reconfigs())
        })
    });
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
