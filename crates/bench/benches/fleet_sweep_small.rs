//! Micro-benchmark of the fleet service's sweep path: a small provisioning grid
//! (electrical + provisioned-optical, two failure traces each) on the paper's
//! 16-GPU workload through the shared-template cache. Single worker, so the
//! number tracks per-variant evaluation cost — spec expansion, scenario build
//! against the cached `Arc<TrainingDag>`, simulation, frontier roll-up — rather
//! than pool scheduling (worker-count byte-identity is pinned by the property
//! suite; this tracks the wall-clock of the work itself).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opus::fleet::{FailureModel, FleetService, ProvisioningLevel, SweepSpec};
use opus::ReconfigPolicy;
use railsim_bench::{paper_cluster, paper_dag};
use railsim_sim::SimDuration;

fn bench_fleet_sweep_small(c: &mut Criterion) {
    let service = FleetService::new(paper_cluster());
    service.dag_template("paper", paper_dag);
    let sweep = SweepSpec {
        template: "paper".to_string(),
        traces_per_level: 2,
        levels: vec![
            ProvisioningLevel::bare("electrical", ReconfigPolicy::Electrical, SimDuration::ZERO),
            ProvisioningLevel::bare(
                "piezo-25ms",
                ReconfigPolicy::Provisioned,
                SimDuration::from_millis(25),
            ),
        ],
        failures: FailureModel {
            max_outages: 2,
            window: SimDuration::from_millis(60),
            min_outage: SimDuration::from_millis(1),
            max_outage: SimDuration::from_millis(10),
        },
        ..SweepSpec::default()
    };

    let mut group = c.benchmark_group("fleet_sweep");
    group.sample_size(20);
    group.bench_function("fleet_sweep_small", |b| {
        b.iter(|| {
            let report = service.evaluate(&sweep);
            assert_eq!(report.variants.len(), 4);
            black_box(report.frontier.pareto_points())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_sweep_small);
criterion_main!(benches);
