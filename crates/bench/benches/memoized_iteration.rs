//! Macro-benchmark of steady-state iteration memoization: a many-iteration
//! jitter-free run with fast-forwarding on versus the naive path that re-steps every
//! iteration. The pair quantifies the speedup the memo buys on iterations 2..N
//! (byte-identity between the two paths is pinned by the determinism and compat
//! suites; this tracks the wall-clock side of the bargain).

#![allow(deprecated)] // the `with_*` chains here migrate to field style over time

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opus::{OpusConfig, OpusSimulator};
use railsim_bench::{paper_cluster, paper_dag};
use railsim_sim::SimDuration;

const ITERATIONS: u32 = 16;

fn bench_memoized_iteration(c: &mut Criterion) {
    let cluster = paper_cluster();
    let dag = paper_dag();
    let config = OpusConfig::provisioned(SimDuration::from_millis(25))
        .with_iterations(ITERATIONS)
        .with_jitter(0.0, 1);

    let mut group = c.benchmark_group("memoized_iteration");
    group.sample_size(20);
    group.bench_function("memoized_16_iters", |b| {
        b.iter(|| {
            let mut sim = OpusSimulator::new(cluster.clone(), dag.clone(), config);
            let result = sim.run();
            assert!(
                sim.memoized_iterations() > 0,
                "the memo must engage on the jitter-free bench workload"
            );
            black_box(result.steady_state_iteration_time())
        })
    });
    group.bench_function("naive_16_iters", |b| {
        b.iter(|| {
            let mut sim =
                OpusSimulator::new(cluster.clone(), dag.clone(), config.with_memoization(false));
            black_box(sim.run().steady_state_iteration_time())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_memoized_iteration);
criterion_main!(benches);
