//! Micro-benchmark: extracting inter-parallelism windows (Fig. 4) from a simulated
//! iteration's communication records.

#![allow(deprecated)] // the `with_*` chains here migrate to field style over time

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opus::{window_cdf, windows_on_rail, OpusConfig, OpusSimulator};
use railsim_bench::{paper_cluster, paper_dag};
use railsim_topology::RailId;

fn bench_window_extraction(c: &mut Criterion) {
    let cluster = paper_cluster();
    let rails = cluster.all_rails();
    let mut sim = OpusSimulator::new(
        cluster,
        paper_dag(),
        OpusConfig::electrical()
            .with_iterations(2)
            .with_jitter(0.05, 42),
    );
    let result = sim.run();
    let records = &result.iterations[1].comm_records;

    c.bench_function("window_extraction_all_rails", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &rail in &rails {
                total += windows_on_rail(black_box(records), rail).len();
            }
            black_box(total)
        })
    });

    c.bench_function("window_cdf_rail0", |b| {
        let windows = windows_on_rail(records, RailId(0));
        b.iter(|| black_box(window_cdf(&windows).quantile(0.75)))
    });
}

criterion_group!(benches, bench_window_extraction);
criterion_main!(benches);
