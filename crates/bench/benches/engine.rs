//! Micro-benchmark: throughput of the discrete-event engine (event queue push/pop),
//! the substrate every simulation in the workspace runs on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use railsim_sim::{Engine, EventQueue, ShardedEngine, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                // Pseudo-random but deterministic times exercise heap reordering.
                let t = (i * 2_654_435_761) % 1_000_000;
                q.push(SimTime::from_nanos(t), i);
            }
            let mut total = 0u64;
            while let Some(ev) = q.pop() {
                total = total.wrapping_add(black_box(ev.event));
            }
            total
        })
    });
}

fn bench_engine_cascade(c: &mut Criterion) {
    c.bench_function("engine_cascading_events_100k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            engine.schedule_at(SimTime::ZERO, 0);
            let mut count = 0u64;
            engine.run(|eng, _t, ev| {
                count += 1;
                if ev < 100_000 {
                    eng.schedule_after(SimDuration::from_nanos(10), ev + 1);
                }
            });
            black_box(count)
        })
    });
}

fn bench_sharded_engine(c: &mut Criterion) {
    // The same 10k-event workload as `event_queue_push_pop_10k`, spread across 8
    // lanes (one per DGX H200 rail): measures the cross-shard merge overhead against
    // the smaller per-lane heaps.
    c.bench_function("sharded_engine_push_pop_10k_8shards", |b| {
        b.iter(|| {
            let mut engine: ShardedEngine<u64> = ShardedEngine::new(8);
            for i in 0..10_000u64 {
                let t = (i * 2_654_435_761) % 1_000_000;
                let shard = engine.shard_for((i % 8) as u32);
                engine.schedule_at(shard, SimTime::from_nanos(t), i);
            }
            let mut total = 0u64;
            while let Some((_, ev)) = engine.pop() {
                total = total.wrapping_add(black_box(ev));
            }
            total
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_engine_cascade,
    bench_sharded_engine
);
criterion_main!(benches);
