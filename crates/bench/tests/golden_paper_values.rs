//! Golden-value regression tests for the paper's quantitative claims, asserted
//! against the same `railsim-bench` setups the figure/table binaries consume. If a
//! model change shifts one of these numbers, the corresponding figure binary would
//! silently drift from the paper — these tests turn that drift into a red build.

use railsim_bench::{paper_cluster, paper_dag, paper_parallelism};
use railsim_cost::{FabricKind, GpuBackendCostModel};
use railsim_workload::strategy::{recommend, table1_rows, StrategyFamily};
use railsim_workload::windows::{llama31_405b_inputs, window_count, WindowCountInputs};

// ---- Eq. 1: window counts ---------------------------------------------------------

#[test]
fn eq1_llama31_405b_window_count_is_pinned() {
    // Paper §3.1: the Llama 3.1 405B recipe shows ~127 inter-parallelism windows per
    // iteration (about 6 windows per second at 1k H100 scale). Our Eq. 1 terms give
    // exactly 126 = 28 (PP&FSDP) + 30 (CP/EP&FSDP) + 64 (CP/EP&PP) + 4 (transitions);
    // the off-by-one against the paper is the final sync transition's double count.
    let breakdown = window_count(&llama31_405b_inputs());
    assert_eq!(breakdown.pp_fsdp, 28);
    assert_eq!(breakdown.cpep_fsdp, 30);
    assert_eq!(breakdown.cpep_pp, 64);
    assert_eq!(breakdown.cp_ep, 0);
    assert_eq!(breakdown.state_transitions, 4);
    assert_eq!(breakdown.total(), 126);
}

#[test]
fn eq1_paper_testbed_window_count_matches_fig3() {
    // The §3.1 testbed workload (TP=4, FSDP=2, PP=2, 2 micro-batches) shows 8 windows
    // per iteration — the arrows visible in the paper's Fig. 3(a). Derive the inputs
    // from the *same* parallelism config the figure binaries simulate.
    let parallel = paper_parallelism();
    let inputs = WindowCountInputs {
        pipeline: parallel.pipeline,
        num_layers: 32,
        num_microbatches: parallel.num_microbatches,
        has_cp_or_ep: parallel.context > 1 || parallel.expert > 1,
        has_cp_and_ep: parallel.context > 1 && parallel.expert > 1,
    };
    assert_eq!(parallel.pipeline, 2, "paper testbed uses PP=2");
    assert_eq!(window_count(&inputs).total(), 8);
}

// ---- Table 1: strategy list -------------------------------------------------------

#[test]
fn table1_strategy_rows_are_pinned() {
    let rows = table1_rows();
    assert_eq!(rows.len(), 4);

    assert_eq!(rows[0].model_class, "Small (<10B)");
    assert_eq!(rows[0].gpu_range, "N <= 8");
    assert_eq!(
        rows[0].strategies,
        vec![StrategyFamily::Tp, StrategyFamily::Dp]
    );

    assert_eq!(rows[1].gpu_range, "8 < N <= 512");
    assert_eq!(
        rows[1].strategies,
        vec![
            StrategyFamily::TpPp,
            StrategyFamily::TpDp,
            StrategyFamily::Dp
        ]
    );

    assert_eq!(rows[2].gpu_range, "512 < N <= 1024");
    assert_eq!(
        rows[2].strategies,
        vec![StrategyFamily::DpPp, StrategyFamily::DpTp]
    );

    assert_eq!(rows[3].gpu_range, "N > 1024");
    assert_eq!(rows[3].strategies, vec![StrategyFamily::TpDpPp]);
}

#[test]
fn table1_boundaries_recommend_like_the_paper() {
    // The class boundaries themselves (10B parameters; 8/512/1024 GPUs) are part of
    // the table's claim: check each side of every boundary.
    assert_eq!(recommend(9_999_999_999, 8).model_class, "Small (<10B)");
    assert_eq!(recommend(10_000_000_000, 8).model_class, "Large (>10B)");
    assert_eq!(recommend(70_000_000_000, 512).gpu_range, "8 < N <= 512");
    assert_eq!(recommend(70_000_000_000, 513).gpu_range, "512 < N <= 1024");
    assert_eq!(recommend(70_000_000_000, 1025).gpu_range, "N > 1024");
}

// ---- Fig. 7: cost/power ratios ----------------------------------------------------

#[test]
fn fig7_cost_and_power_savings_are_pinned() {
    // The fig7_cost_power binary reports Opus saving 73.0% of the capex and 90.84% of
    // the power of the rail-optimized electrical fabric, for every cluster size on the
    // figure's x-axis (the roll-up is linear in GPU count between Clos tier breaks).
    let model = GpuBackendCostModel::dgx_h200_400g();
    for n in [1024u64, 2048, 4096, 8192] {
        let rail = model.evaluate(FabricKind::RailOptimized, n);
        let opus = model.evaluate(FabricKind::Opus, n);
        let capex_saving = opus.capex_saving_vs(&rail);
        let power_saving = opus.power_saving_vs(&rail);
        assert!(
            (capex_saving - 0.730).abs() < 0.005,
            "capex saving at {n} GPUs drifted: {capex_saving:.4} (expected ~0.730)"
        );
        assert!(
            (power_saving - 0.9084).abs() < 0.0005,
            "power saving at {n} GPUs drifted: {power_saving:.4} (expected ~0.9084)"
        );
    }
}

#[test]
fn fig7_fabric_ordering_holds_on_the_figure_axis() {
    // Fat-tree >= rail-optimized > Opus on both capex and power at every figure point.
    let model = GpuBackendCostModel::dgx_h200_400g();
    for n in [1024u64, 2048, 4096, 8192] {
        let ft = model.evaluate(FabricKind::FatTree, n);
        let rail = model.evaluate(FabricKind::RailOptimized, n);
        let opus = model.evaluate(FabricKind::Opus, n);
        assert!(ft.capex_usd >= rail.capex_usd && rail.capex_usd > opus.capex_usd);
        assert!(ft.power_watts >= rail.power_watts && rail.power_watts > opus.power_watts);
    }
}

// ---- The bench setups stay on the paper's testbed ---------------------------------

#[test]
fn bench_setups_match_the_paper_testbed() {
    let cluster = paper_cluster();
    assert_eq!(cluster.num_gpus(), 16, "4 Perlmutter nodes x 4 A100s");
    assert_eq!(cluster.num_rails(), 4);
    let dag = paper_dag();
    assert!(dag.validate().is_ok());
    assert!(dag.communication_tasks().count() > 0);
}
